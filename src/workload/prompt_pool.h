// Prompt pool and batch sampling, following the paper's methodology:
// "We extract paragraphs with >=256 tokens as a pool of valid prompts. For
//  each inference batch, we randomly sample the required number of prompts."
// and for sequence-length experiments: "We use a diverse subset or multiples
// of the 256-token prompts to form a single input, and limit the output
// tokens to the remaining sequence length."
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/rng.h"
#include "tokenizer/tokenizer.h"
#include "workload/corpus.h"

namespace orinsim::workload {

// Sequence-length configuration A = B + C (total = input + output), exactly
// the splits the paper evaluates.
struct SeqConfig {
  std::size_t total = 96;
  std::size_t input = 32;
  std::size_t output = 64;
};

// The paper's default (sl=96: 32 in + 64 out) and the four sweep points.
SeqConfig seq_config_default();
std::vector<SeqConfig> seq_config_sweep();
// total must be one of {96, 128, 256, 512, 1024}.
SeqConfig seq_config_for_total(std::size_t total);

// Chat-style traffic: every request is one of `system_prompts` shared system
// prompts (few-shot preambles) followed by a fresh per-user suffix. Ranks
// are drawn Zipfian — a handful of system prompts dominate, as at chat scale
// — which makes the serving engine's prefix-cache hit rate a scenario-driven
// number rather than an artifact of the sampler.
struct ChatWorkloadConfig {
  std::size_t system_prompts = 8;
  double zipf_s = 1.1;            // rank-frequency skew exponent
  std::size_t system_tokens = 0;  // shared prefix length (tokens)
  std::size_t user_tokens = 0;    // per-user suffix length (tokens)

  bool enabled() const { return system_tokens > 0 && user_tokens > 0; }
  std::size_t prompt_tokens() const { return system_tokens + user_tokens; }
};

class PromptPool {
 public:
  // Tokenizes every corpus paragraph and keeps those with >= min_tokens.
  PromptPool(const Corpus& corpus, const Tokenizer& tokenizer,
             std::size_t min_tokens = 256);

  std::size_t size() const noexcept { return prompts_.size(); }
  const std::vector<TokenId>& prompt(std::size_t i) const { return prompts_.at(i); }

  // Random batch of prompts truncated/stitched to exactly input_tokens each.
  // Prompts longer than input_tokens are truncated; if a pool prompt is
  // shorter (input_tokens > 256), multiple sampled prompts are concatenated,
  // per the paper's "subset or multiples" rule.
  std::vector<std::vector<TokenId>> sample_batch(std::size_t batch_size,
                                                 std::size_t input_tokens, Rng& rng) const;

  // Chat batch: system prompt (Zipfian rank over a pool fixed for this call,
  // drawn from `rng` first) + per-user suffix, each stitched exactly like
  // sample_batch prompts. Every prompt has config.prompt_tokens() tokens.
  // Deterministic under a fixed rng seed.
  std::vector<std::vector<TokenId>> sample_chat_batch(std::size_t batch_size,
                                                      const ChatWorkloadConfig& config,
                                                      Rng& rng) const;

 private:
  std::vector<TokenId> sample_one(std::size_t input_tokens, Rng& rng) const;

  std::vector<std::vector<TokenId>> prompts_;
};

}  // namespace orinsim::workload
