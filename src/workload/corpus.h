// Synthetic stand-ins for the paper's two datasets.
//
// The paper uses WikiText2 and LongBench purely as (a) pools of >=256-token
// prompt paragraphs and (b) text for perplexity. What matters for both uses
// is the token statistics, not the semantics, so each corpus is generated
// with a topic-conditioned Zipfian word model:
//
//  - WikiText2-like: encyclopedia-style paragraphs of 120..420 words, many
//    distinct topics, moderate topical repetition -> higher entropy text.
//  - LongBench-like: long multi-paragraph documents (QA-flavoured: passage
//    then question/answer lines) with strong entity repetition within a
//    document -> lower entropy, matching the paper's lower perplexities on
//    LongBench (Table 3).
//
// Topic conditioning gives the corpora learnable structure: within a topic,
// word choice concentrates on that topic's sub-vocabulary, so a trained
// readout achieves perplexity well below the unigram baseline and
// quantization-induced degradation is measurable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.h"

namespace orinsim::workload {

enum class Dataset { kWikiText2, kLongBench };

std::string dataset_name(Dataset d);
Dataset parse_dataset(const std::string& name);

struct CorpusSpec {
  Dataset dataset = Dataset::kWikiText2;
  std::size_t vocab_words = 800;       // distinct word types
  std::size_t n_topics = 12;           // topic clusters
  double zipf_s = 1.05;                // within-topic Zipf exponent
  double topic_word_fraction = 0.65;   // P(word drawn from topic vocab)
  std::size_t paragraphs = 160;        // WikiText2: paragraph count
  std::size_t documents = 24;          // LongBench: document count
  std::uint64_t seed = 42;

  static CorpusSpec wikitext2(std::uint64_t seed = 42);
  static CorpusSpec longbench(std::uint64_t seed = 43);
};

struct Corpus {
  CorpusSpec spec;
  std::string text;                          // full concatenated text
  std::vector<std::string> paragraphs;       // individual paragraphs
};

// Deterministic generation from spec.seed.
Corpus generate_corpus(const CorpusSpec& spec);

}  // namespace orinsim::workload
