#include "workload/prompt_pool.h"

#include <algorithm>

#include "core/error.h"

namespace orinsim::workload {

SeqConfig seq_config_default() { return SeqConfig{96, 32, 64}; }

std::vector<SeqConfig> seq_config_sweep() {
  return {
      SeqConfig{128, 32, 96},
      SeqConfig{256, 64, 192},
      SeqConfig{512, 128, 384},
      SeqConfig{1024, 256, 768},
  };
}

SeqConfig seq_config_for_total(std::size_t total) {
  if (total == 96) return seq_config_default();
  for (const auto& c : seq_config_sweep()) {
    if (c.total == total) return c;
  }
  ORINSIM_CHECK(false, "no sequence config for total " + std::to_string(total));
  return {};
}

PromptPool::PromptPool(const Corpus& corpus, const Tokenizer& tokenizer,
                       std::size_t min_tokens) {
  for (const auto& paragraph : corpus.paragraphs) {
    auto tokens = tokenizer.encode(paragraph);
    if (tokens.size() >= min_tokens) prompts_.push_back(std::move(tokens));
  }
  ORINSIM_CHECK(!prompts_.empty(),
                "prompt pool is empty: corpus has no paragraph with >= " +
                    std::to_string(min_tokens) + " tokens");
}

std::vector<std::vector<TokenId>> PromptPool::sample_batch(std::size_t batch_size,
                                                           std::size_t input_tokens,
                                                           Rng& rng) const {
  ORINSIM_CHECK(batch_size > 0 && input_tokens > 0, "sample_batch: empty request");
  std::vector<std::vector<TokenId>> batch;
  batch.reserve(batch_size);
  for (std::size_t b = 0; b < batch_size; ++b) {
    std::vector<TokenId> prompt;
    prompt.reserve(input_tokens);
    while (prompt.size() < input_tokens) {
      const auto& source = prompts_[rng.uniform_index(prompts_.size())];
      const std::size_t need = input_tokens - prompt.size();
      const std::size_t take = std::min(need, source.size());
      prompt.insert(prompt.end(), source.begin(), source.begin() + take);
    }
    batch.push_back(std::move(prompt));
  }
  return batch;
}

}  // namespace orinsim::workload
