#include "workload/prompt_pool.h"

#include <algorithm>

#include "core/error.h"

namespace orinsim::workload {

SeqConfig seq_config_default() { return SeqConfig{96, 32, 64}; }

std::vector<SeqConfig> seq_config_sweep() {
  return {
      SeqConfig{128, 32, 96},
      SeqConfig{256, 64, 192},
      SeqConfig{512, 128, 384},
      SeqConfig{1024, 256, 768},
  };
}

SeqConfig seq_config_for_total(std::size_t total) {
  if (total == 96) return seq_config_default();
  for (const auto& c : seq_config_sweep()) {
    if (c.total == total) return c;
  }
  ORINSIM_CHECK(false, "no sequence config for total " + std::to_string(total));
  return {};
}

PromptPool::PromptPool(const Corpus& corpus, const Tokenizer& tokenizer,
                       std::size_t min_tokens) {
  for (const auto& paragraph : corpus.paragraphs) {
    auto tokens = tokenizer.encode(paragraph);
    if (tokens.size() >= min_tokens) prompts_.push_back(std::move(tokens));
  }
  ORINSIM_CHECK(!prompts_.empty(),
                "prompt pool is empty: corpus has no paragraph with >= " +
                    std::to_string(min_tokens) + " tokens");
}

std::vector<TokenId> PromptPool::sample_one(std::size_t input_tokens, Rng& rng) const {
  std::vector<TokenId> prompt;
  prompt.reserve(input_tokens);
  while (prompt.size() < input_tokens) {
    const auto& source = prompts_[rng.uniform_index(prompts_.size())];
    const std::size_t need = input_tokens - prompt.size();
    const std::size_t take = std::min(need, source.size());
    prompt.insert(prompt.end(), source.begin(), source.begin() + take);
  }
  return prompt;
}

std::vector<std::vector<TokenId>> PromptPool::sample_batch(std::size_t batch_size,
                                                           std::size_t input_tokens,
                                                           Rng& rng) const {
  ORINSIM_CHECK(batch_size > 0 && input_tokens > 0, "sample_batch: empty request");
  std::vector<std::vector<TokenId>> batch;
  batch.reserve(batch_size);
  for (std::size_t b = 0; b < batch_size; ++b) {
    batch.push_back(sample_one(input_tokens, rng));
  }
  return batch;
}

std::vector<std::vector<TokenId>> PromptPool::sample_chat_batch(
    std::size_t batch_size, const ChatWorkloadConfig& config, Rng& rng) const {
  ORINSIM_CHECK(batch_size > 0, "sample_chat_batch: empty request");
  ORINSIM_CHECK(config.enabled() && config.system_prompts > 0,
                "sample_chat_batch: config needs system/user token counts and a pool");
  // The shared system prompts are drawn first, so they are fixed for the
  // whole batch and identical across calls with the same seed.
  std::vector<std::vector<TokenId>> systems;
  systems.reserve(config.system_prompts);
  for (std::size_t k = 0; k < config.system_prompts; ++k) {
    systems.push_back(sample_one(config.system_tokens, rng));
  }
  const ZipfSampler zipf(config.system_prompts, config.zipf_s);
  std::vector<std::vector<TokenId>> batch;
  batch.reserve(batch_size);
  for (std::size_t b = 0; b < batch_size; ++b) {
    const std::size_t rank = zipf.sample(rng);
    std::vector<TokenId> prompt = systems[rank];
    const std::vector<TokenId> suffix = sample_one(config.user_tokens, rng);
    prompt.insert(prompt.end(), suffix.begin(), suffix.end());
    batch.push_back(std::move(prompt));
  }
  return batch;
}

}  // namespace orinsim::workload
