// Request arrival processes for the serving simulators.
//
// The paper's methodology forms batches from a pool (a closed system); a
// deployed endpoint sees an open arrival stream. Three standard processes:
//  - kDeterministic: fixed spacing (the schedulers' original behaviour)
//  - kPoisson: exponential inter-arrivals at the same mean rate
//  - kBursty: Markov-modulated Poisson, alternating quiet and burst phases
//    (mean rate preserved; burstiness is what stresses tail latency).
#pragma once

#include <cstddef>
#include <vector>

#include "core/rng.h"

namespace orinsim::workload {

enum class ArrivalKind { kDeterministic, kPoisson, kBursty };

struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kDeterministic;
  double rate_rps = 2.0;
  // kBursty: the burst phase runs at burst_factor x rate, the quiet phase at
  // rate / burst_factor; phases alternate with these mean durations.
  double burst_factor = 4.0;
  double mean_phase_s = 10.0;
  std::uint64_t seed = 42;
};

// `count` arrival timestamps, non-decreasing, starting at t >= 0.
std::vector<double> generate_arrivals(const ArrivalSpec& spec, std::size_t count);

// The arrival model every serving scheduler consumes. One struct instead of
// the kind/rate/seed/count fields formerly copied across SchedulerConfig,
// ContinuousConfig and the hybrid offload config, so a workload definition
// moves between schedulers without field-by-field copying.
struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kDeterministic;
  double rate_rps = 2.0;
  std::uint64_t seed = 42;
  std::size_t total_requests = 64;

  ArrivalSpec spec() const {
    ArrivalSpec s;
    s.kind = kind;
    s.rate_rps = rate_rps;
    s.seed = seed;
    return s;
  }
  // The total_requests timestamps of this configuration.
  std::vector<double> generate() const { return generate_arrivals(spec(), total_requests); }
};

// Sample statistics used by tests: mean rate and squared coefficient of
// variation of the inter-arrival times (1 for Poisson, ~0 deterministic,
// > 1 bursty).
struct ArrivalStats {
  double mean_rate_rps = 0.0;
  double interarrival_scv = 0.0;
};
ArrivalStats analyze_arrivals(const std::vector<double>& arrivals);

}  // namespace orinsim::workload
