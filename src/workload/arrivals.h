// Request arrival processes for the serving simulators.
//
// The paper's methodology forms batches from a pool (a closed system); a
// deployed endpoint sees an open arrival stream. Four standard processes:
//  - kDeterministic: fixed spacing (the schedulers' original behaviour)
//  - kPoisson: exponential inter-arrivals at the same mean rate
//  - kBursty: Markov-modulated Poisson, alternating quiet and burst phases
//    (mean rate preserved; burstiness is what stresses tail latency).
//  - kDiurnal: piecewise-constant rate Poisson following a repeating daily
//    rate curve (the fleet simulator's traffic shape: troughs overnight,
//    peaks at the busy hours). Within each segment arrivals are Poisson at
//    rate_rps * multiplier; memorylessness makes restarting the exponential
//    draw at segment boundaries exact.
#pragma once

#include <cstddef>
#include <vector>

#include "core/rng.h"

namespace orinsim::workload {

enum class ArrivalKind { kDeterministic, kPoisson, kBursty, kDiurnal };

// Default diurnal shape: a scaled-down day of six equal segments, trough to
// evening peak and back. Mean multiplier is 1.0, so rate_rps stays the mean
// rate over a full period.
std::vector<double> diurnal_default_curve();

struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kDeterministic;
  double rate_rps = 2.0;
  // kBursty: the burst phase runs at burst_factor x rate, the quiet phase at
  // rate / burst_factor; phases alternate with these mean durations.
  double burst_factor = 4.0;
  double mean_phase_s = 10.0;
  // kDiurnal: the rate curve, as multipliers on rate_rps over equal-length
  // segments spanning diurnal_period_s, repeated until `count` arrivals are
  // drawn. Empty selects diurnal_default_curve().
  std::vector<double> diurnal_multipliers;
  double diurnal_period_s = 60.0;
  std::uint64_t seed = 42;
};

// `count` arrival timestamps, non-decreasing, starting at t >= 0.
std::vector<double> generate_arrivals(const ArrivalSpec& spec, std::size_t count);

// The arrival model every serving scheduler consumes. One struct instead of
// the kind/rate/seed/count fields formerly copied across SchedulerConfig,
// ContinuousConfig and the hybrid offload config, so a workload definition
// moves between schedulers without field-by-field copying.
struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kDeterministic;
  double rate_rps = 2.0;
  std::uint64_t seed = 42;
  std::size_t total_requests = 64;
  // Shape knobs for the modulated processes; ignored by the others (defaults
  // match ArrivalSpec, so configs written before these fields existed keep
  // their exact arrival streams).
  double burst_factor = 4.0;
  double mean_phase_s = 10.0;
  std::vector<double> diurnal_multipliers;
  double diurnal_period_s = 60.0;

  ArrivalSpec spec() const {
    ArrivalSpec s;
    s.kind = kind;
    s.rate_rps = rate_rps;
    s.burst_factor = burst_factor;
    s.mean_phase_s = mean_phase_s;
    s.diurnal_multipliers = diurnal_multipliers;
    s.diurnal_period_s = diurnal_period_s;
    s.seed = seed;
    return s;
  }
  // The total_requests timestamps of this configuration.
  std::vector<double> generate() const { return generate_arrivals(spec(), total_requests); }
};

// Sample statistics used by tests: mean rate and squared coefficient of
// variation of the inter-arrival times (1 for Poisson, ~0 deterministic,
// > 1 bursty).
struct ArrivalStats {
  double mean_rate_rps = 0.0;
  double interarrival_scv = 0.0;
};
ArrivalStats analyze_arrivals(const std::vector<double>& arrivals);

// Per-segment empirical rates of a diurnal stream: arrivals falling in
// segment k of the repeating curve (all periods pooled), divided by the
// total time spent in that segment. The shape pin tests compare these
// against rate_rps * multiplier[k].
std::vector<double> diurnal_segment_rates(const std::vector<double>& arrivals,
                                          const std::vector<double>& multipliers,
                                          double period_s);

}  // namespace orinsim::workload
