// Readout training: turns a random-body transformer into a genuine language
// model over the synthetic corpora (reservoir-computing style).
//
// The transformer body stays frozen; the LM head is trained with Adam on
// next-token cross-entropy, using hidden features extracted once from the
// FP32 body. This yields models whose perplexity (a) beats the unigram
// baseline (the body's contextual features carry information) and (b)
// degrades measurably when the body is then quantized — exactly the effect
// Table 3 of the paper measures on pretrained LLMs.
//
// Why not full backprop? The paper needs a *trained predictor whose features
// shift under weight quantization*; how the predictor was trained is
// irrelevant to the quantization study, and a frozen-body readout trains in
// seconds on CPU while exercising the same inference path.
#pragma once

#include <cstdint>
#include <vector>

#include "model/transformer.h"

namespace orinsim::train {

struct TrainConfig {
  std::size_t epochs = 8;
  std::size_t minibatch = 64;
  float learning_rate = 0.003f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 1e-4f;
  std::size_t max_tokens = 24000;   // training stream truncation
  std::size_t context_window = 192; // feature-extraction window (fresh cache per window)
  std::uint64_t seed = 1234;
};

struct TrainReport {
  std::vector<double> epoch_loss;   // mean cross-entropy per epoch (nats)
  double initial_loss = 0.0;
  double final_loss = 0.0;
  std::size_t train_tokens = 0;
};

// Trains master.lm_head in place. The FP32 body of `master` provides the
// features; later Models built from this master (at any precision) share the
// trained head.
TrainReport train_readout(MasterWeights& master, const std::vector<TokenId>& tokens,
                          const TrainConfig& config);

// Mean cross-entropy (nats/token) of the *unigram* distribution of `tokens`
// over a vocab of the given size (Laplace-smoothed). exp() of this is the
// perplexity floor any contextual model should beat.
double unigram_cross_entropy(const std::vector<TokenId>& tokens, std::size_t vocab);

}  // namespace orinsim::train
