#include "train/readout_trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/error.h"
#include "core/logging.h"
#include "core/rng.h"
#include "tensor/kernels.h"

namespace orinsim::train {

namespace {

// Extract final-hidden features for each position in the stream. Position i's
// feature predicts token i+1. The cache is reset every `window` tokens, so
// features near a window start have short context — same as strided
// perplexity evaluation, and harmless for training.
void extract_features(Model& model, std::span<const TokenId> tokens, std::size_t window,
                      std::vector<float>& features /* [n, d] */) {
  const std::size_t d = model.config().d_model;
  const std::size_t n = tokens.size();
  features.assign(n * d, 0.0f);
  std::vector<float> hidden(d);
  for (std::size_t start = 0; start < n; start += window) {
    const std::size_t end = std::min(start + window, n);
    KVCache cache(model.config(), 1, end - start);
    for (std::size_t i = start; i < end; ++i) {
      model.forward_token(tokens[i], 0, cache, hidden);
      std::copy(hidden.begin(), hidden.end(), features.begin() + i * d);
    }
  }
}

}  // namespace

TrainReport train_readout(MasterWeights& master, const std::vector<TokenId>& tokens,
                          const TrainConfig& config) {
  ORINSIM_CHECK(tokens.size() >= 64, "train_readout: need at least 64 tokens");
  const TransformerConfig& mc = master.config;
  const std::size_t d = mc.d_model;
  const std::size_t vocab = mc.vocab;

  std::vector<TokenId> stream(tokens.begin(),
                              tokens.begin() + std::min(tokens.size(), config.max_tokens));
  for (TokenId t : stream) ORINSIM_CHECK(t < vocab, "training token out of vocab");

  // Features from the FP32 body (aliasing shared_ptr: master outlives model).
  Model fp32_model(std::shared_ptr<const MasterWeights>(&master, [](const MasterWeights*) {}),
                   DType::kF32);
  std::vector<float> features;
  const std::size_t window = std::min(config.context_window, mc.max_seq);
  extract_features(fp32_model, stream, window, features);

  // Training pairs: feature[i] -> target stream[i+1].
  const std::size_t n_pairs = stream.size() - 1;
  std::vector<std::size_t> order(n_pairs);
  std::iota(order.begin(), order.end(), 0);

  // Adam state over lm_head [vocab, d].
  std::vector<float>& w = master.lm_head;
  ORINSIM_CHECK(w.size() == vocab * d, "lm_head shape mismatch");
  std::vector<float> m(w.size(), 0.0f), v(w.size(), 0.0f);
  std::vector<float> grad(w.size(), 0.0f);
  std::vector<float> logits(vocab);
  std::vector<float> probs(vocab);

  Rng rng(config.seed);
  TrainReport report;
  report.train_tokens = n_pairs;
  std::size_t adam_t = 0;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Fisher-Yates shuffle of the pair order.
    for (std::size_t i = n_pairs; i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    }
    double epoch_loss = 0.0;
    std::size_t seen = 0;

    for (std::size_t base = 0; base < n_pairs; base += config.minibatch) {
      const std::size_t mb_end = std::min(base + config.minibatch, n_pairs);
      const std::size_t mb = mb_end - base;
      std::fill(grad.begin(), grad.end(), 0.0f);

      for (std::size_t j = base; j < mb_end; ++j) {
        const std::size_t i = order[j];
        const float* h = features.data() + i * d;
        const TokenId target = stream[i + 1];
        kernels::matvec(w, std::span<const float>(h, d), logits, vocab, d);
        const double lse = kernels::logsumexp(logits);
        epoch_loss += lse - logits[target];
        ++seen;
        // dL/dlogit = softmax(logits) - onehot(target)
        for (std::size_t c = 0; c < vocab; ++c) {
          probs[c] = static_cast<float>(std::exp(static_cast<double>(logits[c]) - lse));
        }
        probs[target] -= 1.0f;
#pragma omp parallel for
        for (std::ptrdiff_t cs = 0; cs < static_cast<std::ptrdiff_t>(vocab); ++cs) {
          const auto c = static_cast<std::size_t>(cs);
          const float p = probs[c];
          if (p == 0.0f) continue;
          float* gc = grad.data() + c * d;
          for (std::size_t k = 0; k < d; ++k) gc[k] += p * h[k];
        }
      }

      // Adam step (bias-corrected), batch-mean gradient + decoupled decay.
      ++adam_t;
      const float inv_mb = 1.0f / static_cast<float>(mb);
      const float bc1 = 1.0f - std::pow(config.beta1, static_cast<float>(adam_t));
      const float bc2 = 1.0f - std::pow(config.beta2, static_cast<float>(adam_t));
#pragma omp parallel for
      for (std::ptrdiff_t is = 0; is < static_cast<std::ptrdiff_t>(w.size()); ++is) {
        const auto i = static_cast<std::size_t>(is);
        const float g = grad[i] * inv_mb;
        m[i] = config.beta1 * m[i] + (1.0f - config.beta1) * g;
        v[i] = config.beta2 * v[i] + (1.0f - config.beta2) * g * g;
        const float mhat = m[i] / bc1;
        const float vhat = v[i] / bc2;
        w[i] -= config.learning_rate *
                (mhat / (std::sqrt(vhat) + config.epsilon) + config.weight_decay * w[i]);
      }
    }

    report.epoch_loss.push_back(epoch_loss / static_cast<double>(seen));
    if (epoch == 0) report.initial_loss = report.epoch_loss.front();
    LOG_DEBUG << "readout epoch " << epoch << " loss " << report.epoch_loss.back();
  }
  report.final_loss = report.epoch_loss.back();
  return report;
}

double unigram_cross_entropy(const std::vector<TokenId>& tokens, std::size_t vocab) {
  ORINSIM_CHECK(!tokens.empty(), "unigram_cross_entropy: empty stream");
  std::vector<double> counts(vocab, 1.0);  // Laplace smoothing
  for (TokenId t : tokens) {
    ORINSIM_CHECK(t < vocab, "token out of vocab");
    counts[t] += 1.0;
  }
  const double total = std::accumulate(counts.begin(), counts.end(), 0.0);
  double ce = 0.0;
  for (TokenId t : tokens) ce -= std::log(counts[t] / total);
  return ce / static_cast<double>(tokens.size());
}

}  // namespace orinsim::train
