// Lightweight error handling for orinsim.
//
// The library distinguishes programmer errors (contract violations, checked
// with ORINSIM_CHECK / ORINSIM_DCHECK, which abort) from recoverable domain
// errors (e.g. a simulated out-of-memory), which are reported through
// Expected<T> or domain-specific result types.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace orinsim {

// Thrown for unrecoverable contract violations when exceptions are preferred
// over abort (tests install this mode via ORINSIM_CHECK_THROWS).
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* file, int line, const char* expr,
                                      const std::string& msg) {
  std::string full = std::string("CHECK failed at ") + file + ":" + std::to_string(line) +
                     ": (" + expr + ") " + msg;
  throw ContractViolation(full);
}
}  // namespace detail

// Always-on invariant check. Throws ContractViolation so tests can assert on
// contract enforcement; at the top level this terminates with a clear message.
#define ORINSIM_CHECK(expr, ...)                                                       \
  do {                                                                                 \
    if (!(expr)) {                                                                     \
      ::orinsim::detail::check_failed(__FILE__, __LINE__, #expr, std::string{__VA_ARGS__}); \
    }                                                                                  \
  } while (false)

#ifndef NDEBUG
#define ORINSIM_DCHECK(expr, ...) ORINSIM_CHECK(expr, ##__VA_ARGS__)
#else
#define ORINSIM_DCHECK(expr, ...) \
  do {                            \
  } while (false)
#endif

// A minimal Expected<T>: either a value or an error message. Used at module
// boundaries where failure is a legitimate outcome (parse errors, simulated
// OOM, file IO).
template <typename T>
class Expected {
 public:
  Expected(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  static Expected failure(std::string message) { return Expected(Error{std::move(message)}); }

  bool ok() const noexcept { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& {
    ORINSIM_CHECK(ok(), error());
    return std::get<T>(storage_);
  }
  T& value() & {
    ORINSIM_CHECK(ok(), error());
    return std::get<T>(storage_);
  }
  T&& take() && {
    ORINSIM_CHECK(ok(), error());
    return std::get<T>(std::move(storage_));
  }
  const std::string& error() const {
    static const std::string kNone = "(no error)";
    if (ok()) return kNone;
    return std::get<Error>(storage_).message;
  }

 private:
  struct Error {
    std::string message;
  };
  explicit Expected(Error e) : storage_(std::move(e)) {}
  std::variant<T, Error> storage_;
};

}  // namespace orinsim
