// Minimal leveled logger. Single global sink (stderr), level settable at
// runtime; used by the harness to narrate sweeps without polluting the table
// output written to stdout.
#pragma once

#include <sstream>
#include <string>

namespace orinsim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
LogLevel parse_log_level(const std::string& name);

namespace detail {
void log_message(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace orinsim

#define ORINSIM_LOG(level)                                        \
  if (static_cast<int>(::orinsim::LogLevel::level) <              \
      static_cast<int>(::orinsim::log_level())) {                 \
  } else                                                          \
    ::orinsim::detail::LogLine(::orinsim::LogLevel::level)

#define LOG_DEBUG ORINSIM_LOG(kDebug)
#define LOG_INFO ORINSIM_LOG(kInfo)
#define LOG_WARN ORINSIM_LOG(kWarn)
#define LOG_ERROR ORINSIM_LOG(kError)
