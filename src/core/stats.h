// Statistics helpers shared by the telemetry pipeline and the harness:
// medians, percentiles, trapezoidal integration (the paper's energy
// estimator), running moments, and simple linear fits for shape checks.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace orinsim {

// Empty inputs have no mean/median/percentile/extremum: these return quiet
// NaN rather than a fake 0.0 so an empty latency or power signal can never
// masquerade as a perfect measurement. format_double() renders NaN as "n/a";
// comparisons against NaN are false, so SLO checks fail closed.

// Arithmetic mean; NaN for an empty span.
double mean(std::span<const double> values);

// Median via partial sort of a copy; NaN for an empty span.
double median(std::span<const double> values);

// Linear-interpolated percentile, p in [0, 100]; NaN for an empty span.
double percentile(std::span<const double> values, double p);

double min_value(std::span<const double> values);  // NaN for an empty span
double max_value(std::span<const double> values);  // NaN for an empty span
double stddev(std::span<const double> values);

// Trapezoidal numerical integration of y(t) over possibly non-uniform time
// samples. This mirrors the paper's energy estimator: power sampled every ~2s,
// integrated per batch, summed across batches. times must be non-decreasing
// and the spans equally sized.
double trapezoid_integral(std::span<const double> times, std::span<const double> values);

// Welford running mean/variance; used to average repeated runs.
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept;  // population variance
  double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Least-squares fit y = a + b*x. Used by shape checks ("throughput decreases
// with sequence length" => negative slope).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

// True if values are strictly increasing / decreasing (with relative
// tolerance allowing plateaus up to tol of the local magnitude).
bool is_monotonic_increasing(std::span<const double> values, double tol = 0.0);
bool is_monotonic_decreasing(std::span<const double> values, double tol = 0.0);

// Geometric-mean of pairwise ratios a[i]/b[i]; used to compare paper-vs-sim
// series in EXPERIMENTS.md ("within a factor of X on average").
double geomean_ratio(std::span<const double> a, std::span<const double> b);

}  // namespace orinsim
