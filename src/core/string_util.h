// Small string utilities used across modules (no locale dependence).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace orinsim {

std::vector<std::string> split(std::string_view text, char delim);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string to_lower(std::string_view text);
std::string trim(std::string_view text);
bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace orinsim
