// Small string utilities used across modules (no locale dependence).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace orinsim {

std::vector<std::string> split(std::string_view text, char delim);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string to_lower(std::string_view text);
std::string trim(std::string_view text);
bool starts_with(std::string_view text, std::string_view prefix);

// Strict numeric parsing: the whole (whitespace-trimmed) text must be one
// in-range, finite number — trailing garbage, overflow, empty strings, and
// inf/nan all return false and leave `out` untouched. Shared by CliArgs flag
// validation and the HTTP server's query/body field validation, where
// malformed input must produce a clean error instead of a silent 0.
bool parse_int_strict(std::string_view text, long long& out);
bool parse_double_strict(std::string_view text, double& out);

}  // namespace orinsim
