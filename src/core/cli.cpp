#include "core/cli.h"

#include <cstdio>
#include <cstdlib>

#include "core/string_util.h"

namespace orinsim {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (starts_with(arg, "no-")) {
      flags_[arg.substr(3)] = "false";
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string CliArgs::get(const std::string& name, const std::string& default_value) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

void CliArgs::usage_error(const std::string& name, const std::string& value,
                          const char* expected) const {
  std::fprintf(stderr, "%s: invalid value for --%s: '%s' (expected %s)\n",
               program_.empty() ? "orinsim" : program_.c_str(), name.c_str(),
               value.c_str(), expected);
  std::exit(kUsageExitCode);
}

long long CliArgs::get_int(const std::string& name, long long default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  long long out = 0;
  if (!parse_int_strict(it->second, out)) {
    usage_error(name, it->second, "an integer");
  }
  return out;
}

double CliArgs::get_double(const std::string& name, double default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  double out = 0.0;
  if (!parse_double_strict(it->second, out)) {
    usage_error(name, it->second, "a number");
  }
  return out;
}

bool CliArgs::get_bool(const std::string& name, bool default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  const std::string v = to_lower(it->second);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  usage_error(name, it->second, "a boolean (true/false/1/0/yes/no/on/off)");
  return default_value;  // unreachable
}

}  // namespace orinsim
