// A small fixed-size thread pool with a blocking parallel_for. The functional
// engine's kernels use OpenMP directly; the pool serves coarse-grained
// parallelism in the harness (independent sweep points) where nested OpenMP
// regions would oversubscribe.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace orinsim {

class ThreadPool {
 public:
  // threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  // Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  // Block until all submitted tasks have finished.
  void wait_idle();

  // Run fn(i) for i in [begin, end) across the pool and wait. Exceptions
  // thrown by fn are rethrown (first one wins) after all indices complete.
  //
  // The calling thread executes shard work inline, so parallel_for is safe
  // to invoke from inside a pool worker: even if every queued helper shard
  // sits behind the caller's own task, the caller drains the index range
  // itself and only waits for indices already claimed by running helpers.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  // Like parallel_for, but fn(shard, i) also receives the identity of the
  // executing shard: a stable value in [0, shard_count()) for the duration of
  // the call, with at most one index running per shard at a time. Callers use
  // it to index per-shard scratch (e.g. one InferenceWorkspace per worker).
  // Shard 0 is always the calling thread.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  // Upper bound on the shard index parallel_for passes to fn: the workers
  // plus the calling thread.
  std::size_t shard_count() const noexcept { return workers_.size() + 1; }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace orinsim
