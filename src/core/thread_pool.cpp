#include "core/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>

#include "core/error.h"

namespace orinsim {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  ORINSIM_CHECK(task != nullptr, "submit: null task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ORINSIM_CHECK(!stop_, "submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

namespace {

// Shared between the caller and the helper shards it submits. Owned by
// shared_ptr so a helper that is still queued when the caller returns (all
// indices already drained) runs harmlessly against live state and frees it
// when the last reference drops.
struct ParallelForState {
  std::function<void(std::size_t, std::size_t)> fn;
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
  std::size_t total = 0;
  std::atomic<std::size_t> completed{0};
  std::mutex mutex;
  std::condition_variable cv;
  std::exception_ptr first_error;
};

void run_shard(const std::shared_ptr<ParallelForState>& st, std::size_t shard) {
  for (;;) {
    const std::size_t i = st->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= st->end) break;
    try {
      st->fn(shard, i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(st->mutex);
      if (!st->first_error) st->first_error = std::current_exception();
    }
    if (st->completed.fetch_add(1, std::memory_order_acq_rel) + 1 == st->total) {
      // Empty critical section pairs with the predicate check under the lock
      // in the caller's wait, closing the check-then-sleep window.
      { std::lock_guard<std::mutex> lock(st->mutex); }
      st->cv.notify_all();
    }
  }
}

}  // namespace

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for(begin, end,
               [&fn](std::size_t /*shard*/, std::size_t i) { fn(i); });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  ORINSIM_CHECK(fn != nullptr, "parallel_for: null body");
  auto st = std::make_shared<ParallelForState>();
  st->fn = fn;  // copied: queued helpers may outlive the caller's frame
  st->next.store(begin, std::memory_order_relaxed);
  st->end = end;
  st->total = end - begin;

  // Shard 0 is the caller; helpers occupy at most one shard per worker.
  const std::size_t shards = std::min<std::size_t>(shard_count(), st->total);
  for (std::size_t s = 1; s < shards; ++s) {
    submit([st, s] { run_shard(st, s); });
  }
  run_shard(st, 0);

  // Wait on index completion, not helper completion: helpers stuck in the
  // queue (e.g. behind the caller's own task in a nested call) are not
  // needed once every index has been claimed and finished.
  std::unique_lock<std::mutex> lock(st->mutex);
  st->cv.wait(lock, [&] {
    return st->completed.load(std::memory_order_acquire) == st->total;
  });
  if (st->first_error) std::rethrow_exception(st->first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace orinsim
