#include "core/thread_pool.h"

#include <atomic>
#include <exception>

#include "core/error.h"

namespace orinsim {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  ORINSIM_CHECK(task != nullptr, "submit: null task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ORINSIM_CHECK(!stop_, "submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  std::atomic<std::size_t> next{begin};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::size_t shards = std::min<std::size_t>(workers_.size(), end - begin);
  std::atomic<std::size_t> done{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  for (std::size_t s = 0; s < shards; ++s) {
    submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= end) break;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
      {
        std::lock_guard<std::mutex> lock(done_mutex);
        ++done;
      }
      done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done.load() == shards; });
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace orinsim
