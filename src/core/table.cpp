#include "core/table.h"

#include <algorithm>
#include <sstream>

#include "core/error.h"
#include "core/units.h"

namespace orinsim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ORINSIM_CHECK(!headers_.empty(), "Table requires at least one column");
}

Table& Table::new_row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add_cell(std::string value) {
  ORINSIM_CHECK(!rows_.empty(), "add_cell before new_row");
  ORINSIM_CHECK(rows_.back().size() < headers_.size(), "row has too many cells");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::add_number(double value, int decimals) {
  return add_cell(format_double(value, decimals));
}

Table& Table::add_oom() { return add_cell("OOM"); }

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  ORINSIM_CHECK(row < rows_.size() && col < headers_.size(), "cell out of range");
  static const std::string kEmpty;
  if (col >= rows_[row].size()) return kEmpty;
  return rows_[row][col];
}

std::string Table::to_markdown() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      out << " " << v << std::string(widths[c] - v.size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out << std::string(widths[c] + 2, '-') << "|";
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) out << ",";
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      // Quote cells containing commas.
      if (v.find(',') != std::string::npos) {
        out << '"' << v << '"';
      } else {
        out << v;
      }
    }
    out << "\n";
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace orinsim
