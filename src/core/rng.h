// Deterministic random number generation.
//
// Every stochastic component in orinsim (weight init, synthetic corpora,
// prompt sampling) takes an explicit Rng so runs are reproducible from a
// single seed, and sub-streams can be forked without correlation (split()).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/error.h"

namespace orinsim {

// SplitMix64-seeded xoshiro256** generator. Small, fast, and good enough for
// synthetic data and weight init (not for cryptography).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  // Independent child stream; advances this generator.
  Rng split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

  std::uint64_t next_u64() {
    auto rotl = [](std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); };
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    ORINSIM_CHECK(n > 0, "uniform_index requires n > 0");
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible for
    // our n << 2^64 use cases.
    return static_cast<std::uint64_t>((static_cast<__uint128_t>(next_u64()) * n) >> 64);
  }

  // Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-12) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  bool bernoulli(double p) { return uniform() < p; }

 private:
  std::uint64_t state_[4] = {};
};

// Zipf-distributed sampler over ranks [0, n). Used by the synthetic corpus
// generators: natural-language unigram frequencies are approximately Zipfian
// with exponent s ~= 1. Precomputes the CDF; O(log n) per sample.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    ORINSIM_CHECK(n > 0, "ZipfSampler requires n > 0");
    ORINSIM_CHECK(s > 0.0, "ZipfSampler requires s > 0");
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = total;
    }
    for (auto& v : cdf_) v /= total;
  }

  std::size_t sample(Rng& rng) const {
    const double u = rng.uniform();
    // Binary search for first cdf_[k] >= u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace orinsim
