// Unit helpers. All simulator-facing quantities carry their unit in the name
// (…_s, …_w, …_j, …_gb, …_mhz); these helpers centralize conversions so that
// magic factors (GiB vs GB) appear exactly once.
#pragma once

#include <cstdint>
#include <string>

namespace orinsim {

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;

constexpr double bytes_to_gib(double bytes) { return bytes / kGiB; }
constexpr double gib_to_bytes(double gib) { return gib * kGiB; }
constexpr double bytes_to_gb(double bytes) { return bytes / kGB; }
constexpr double gb_to_bytes(double gb) { return gb * kGB; }

constexpr double mhz_to_hz(double mhz) { return mhz * 1e6; }
constexpr double ghz_to_hz(double ghz) { return ghz * 1e9; }

constexpr double ms_to_s(double ms) { return ms / 1e3; }
constexpr double s_to_ms(double s) { return s * 1e3; }

// Energy: joule <-> watt-hour (jtop-style dashboards often show mWh).
constexpr double joules_to_wh(double j) { return j / 3600.0; }

// Human-readable byte count, e.g. "16.1 GB" (decimal units, like the paper).
std::string format_bytes(double bytes);

// Fixed-width formatting helper, e.g. format_double(3.14159, 2) == "3.14".
// NaN (the empty-population sentinel from core/stats) renders as "n/a".
std::string format_double(double value, int decimals);

}  // namespace orinsim
