// Wall-clock stopwatch for the functional engine's own microbenchmarks.
// (Simulated time lives in sim::VirtualClock, not here.)
#pragma once

#include <chrono>

namespace orinsim {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace orinsim
