// Tiny command-line flag parser for bench/example binaries.
// Supports --name=value, --name value, and boolean --name / --no-name.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace orinsim {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& default_value) const;
  long long get_int(const std::string& name, long long default_value) const;
  double get_double(const std::string& name, double default_value) const;
  bool get_bool(const std::string& name, bool default_value) const;

  // Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const noexcept { return positional_; }
  const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace orinsim
