// Tiny command-line flag parser for bench/example binaries.
// Supports --name=value, --name value, and boolean --name / --no-name.
//
// Typed getters validate strictly (core/string_util parse_*_strict): a
// malformed value like --power-cap-w=abc, trailing garbage, or an overflow
// prints a usage message naming the bad flag and exits with kUsageExitCode
// instead of silently parsing to 0 or throwing an uncaught exception out of
// main.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace orinsim {

class CliArgs {
 public:
  // Exit code for a malformed flag value (the conventional "usage" status).
  static constexpr int kUsageExitCode = 2;

  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& default_value) const;
  long long get_int(const std::string& name, long long default_value) const;
  double get_double(const std::string& name, double default_value) const;
  bool get_bool(const std::string& name, bool default_value) const;

  // Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const noexcept { return positional_; }
  const std::string& program() const noexcept { return program_; }

 private:
  [[noreturn]] void usage_error(const std::string& name, const std::string& value,
                                const char* expected) const;

  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace orinsim
