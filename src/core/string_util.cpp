#include "core/string_util.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/units.h"

namespace orinsim {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string trim(std::string_view text) {
  std::size_t b = 0, e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return std::string(text.substr(b, e - b));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string format_bytes(double bytes) {
  char buf[64];
  if (bytes >= kGB) {
    std::snprintf(buf, sizeof(buf), "%.1f GB", bytes / kGB);
  } else if (bytes >= kMB) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", bytes / kMB);
  } else if (bytes >= kKB) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", bytes / kKB);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

bool parse_int_strict(std::string_view text, long long& out) {
  const std::string s = trim(text);
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  out = value;
  return true;
}

bool parse_double_strict(std::string_view text, double& out) {
  const std::string s = trim(text);
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  // strtod happily parses "inf"/"nan"; neither is a usable flag or field
  // value, so strictness rejects non-finite results along with garbage.
  if (errno == ERANGE || end != s.c_str() + s.size() || !std::isfinite(value)) {
    return false;
  }
  out = value;
  return true;
}

std::string format_double(double value, int decimals) {
  // Statistics of empty populations come through as NaN (core/stats): render
  // them honestly instead of an impossible-looking "0.00" or printf's "nan".
  if (std::isnan(value)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace orinsim
