#include "core/string_util.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

#include "core/units.h"

namespace orinsim {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string trim(std::string_view text) {
  std::size_t b = 0, e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return std::string(text.substr(b, e - b));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string format_bytes(double bytes) {
  char buf[64];
  if (bytes >= kGB) {
    std::snprintf(buf, sizeof(buf), "%.1f GB", bytes / kGB);
  } else if (bytes >= kMB) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", bytes / kMB);
  } else if (bytes >= kKB) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", bytes / kKB);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace orinsim
