// Table builder used by every bench binary to print paper-style tables in
// markdown or CSV. Cells are strings; numeric convenience setters format with
// fixed decimals so tables line up with the paper's appendix.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace orinsim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Starts a new row; subsequent add_cell calls fill it left to right.
  Table& new_row();
  Table& add_cell(std::string value);
  Table& add_number(double value, int decimals = 2);
  // Out-of-memory / not-applicable marker, matching the paper's "OOM".
  Table& add_oom();

  std::size_t row_count() const noexcept { return rows_.size(); }
  std::size_t column_count() const noexcept { return headers_.size(); }
  const std::string& cell(std::size_t row, std::size_t col) const;

  std::string to_markdown() const;
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace orinsim
