#include "core/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.h"

namespace orinsim {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}  // namespace

double mean(std::span<const double> values) {
  if (values.empty()) return kNaN;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double median(std::span<const double> values) { return percentile(values, 50.0); }

double percentile(std::span<const double> values, double p) {
  ORINSIM_CHECK(p >= 0.0 && p <= 100.0, "percentile p out of range");
  if (values.empty()) return kNaN;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double min_value(std::span<const double> values) {
  if (values.empty()) return kNaN;
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  if (values.empty()) return kNaN;
  return *std::max_element(values.begin(), values.end());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double trapezoid_integral(std::span<const double> times, std::span<const double> values) {
  ORINSIM_CHECK(times.size() == values.size(), "trapezoid: size mismatch");
  if (times.size() < 2) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double dt = times[i] - times[i - 1];
    ORINSIM_CHECK(dt >= 0.0, "trapezoid: times must be non-decreasing");
    acc += 0.5 * (values[i] + values[i - 1]) * dt;
  }
  return acc;
}

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ == 0) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  ORINSIM_CHECK(xs.size() == ys.size(), "fit_linear: size mismatch");
  LinearFit fit;
  const std::size_t n = xs.size();
  if (n < 2) return fit;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

bool is_monotonic_increasing(std::span<const double> values, double tol) {
  for (std::size_t i = 1; i < values.size(); ++i) {
    const double slack = tol * std::abs(values[i - 1]);
    if (values[i] < values[i - 1] - slack) return false;
  }
  return true;
}

bool is_monotonic_decreasing(std::span<const double> values, double tol) {
  for (std::size_t i = 1; i < values.size(); ++i) {
    const double slack = tol * std::abs(values[i - 1]);
    if (values[i] > values[i - 1] + slack) return false;
  }
  return true;
}

double geomean_ratio(std::span<const double> a, std::span<const double> b) {
  ORINSIM_CHECK(a.size() == b.size(), "geomean_ratio: size mismatch");
  double log_acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > 0.0 && b[i] > 0.0) {
      log_acc += std::log(a[i] / b[i]);
      ++n;
    }
  }
  if (n == 0) return 1.0;
  return std::exp(log_acc / static_cast<double>(n));
}

}  // namespace orinsim
