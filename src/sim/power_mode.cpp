#include "sim/power_mode.h"

#include <cctype>

#include "core/error.h"

namespace orinsim::sim {

PowerMode power_mode_maxn() { return PowerMode{"MaxN", 1301.0, 2.2, 12, 3200.0}; }

const std::vector<PowerMode>& all_power_modes() {
  static const std::vector<PowerMode> kModes = {
      {"MaxN", 1301.0, 2.2, 12, 3200.0},  //
      {"A", 800.0, 2.2, 12, 3200.0},      // lower GPU freq
      {"B", 400.0, 2.2, 12, 3200.0},      // lowest GPU freq
      {"C", 1301.0, 1.7, 12, 3200.0},     // lower CPU freq
      {"D", 1301.0, 1.2, 12, 3200.0},     // lowest CPU freq
      {"E", 1301.0, 2.2, 8, 3200.0},      // fewer CPU cores
      {"F", 1301.0, 2.2, 4, 3200.0},      // fewest CPU cores
      {"G", 1301.0, 2.2, 12, 2133.0},     // lower memory freq
      {"H", 1301.0, 2.2, 12, 665.0},      // lowest memory freq
  };
  return kModes;
}

const std::vector<PowerMode>& gpu_frequency_ladder() {
  static const std::vector<PowerMode> kLadder = {
      power_mode_by_name("MaxN"),
      power_mode_by_name("A"),
      power_mode_by_name("B"),
  };
  return kLadder;
}

PowerMode power_mode_by_name(const std::string& name) {
  std::string upper;
  for (char c : name) upper.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  if (upper == "MAXN" || upper == "MAX-N" || upper == "MAX") return power_mode_maxn();
  for (const auto& pm : all_power_modes()) {
    if (pm.name == upper) return pm;
  }
  ORINSIM_CHECK(false, "unknown power mode: " + name);
  return power_mode_maxn();
}

}  // namespace orinsim::sim
