#include "sim/speculative_sim.h"

#include <cmath>

#include "core/error.h"
#include "sim/roofline.h"

namespace orinsim::sim {

double expected_tokens_per_round(double acceptance, std::size_t draft_tokens) {
  ORINSIM_CHECK(acceptance >= 0.0 && acceptance <= 1.0, "acceptance must be in [0,1]");
  ORINSIM_CHECK(draft_tokens >= 1, "need at least one draft token");
  if (acceptance >= 1.0) return static_cast<double>(draft_tokens) + 1.0;
  // Sum_{i=0..K} a^i = (1 - a^(K+1)) / (1 - a): the accepted prefix plus the
  // corrective/bonus token.
  return (1.0 - std::pow(acceptance, static_cast<double>(draft_tokens) + 1.0)) /
         (1.0 - acceptance);
}

SpeculativeEstimate estimate_speculative_speedup(const ModelSpec& target,
                                                 DType target_dtype,
                                                 const ModelSpec& draft,
                                                 DType draft_dtype,
                                                 std::size_t draft_tokens,
                                                 double acceptance, double ctx,
                                                 const PowerMode& pm) {
  const RooflineEngine engine;
  SpeculativeEstimate est;
  est.tokens_per_round = expected_tokens_per_round(acceptance, draft_tokens);

  // One plain target step (batch 1): the non-speculative baseline.
  est.baseline_step_s = engine.decode_step(target, target_dtype, 1, ctx, pm).total_s();

  // Emit one round as events and derive its cost from the timeline: K
  // sequential draft steps, then the verification pass. Verification
  // evaluates K+1 positions of one sequence: same weight streaming, (K+1)x
  // the compute and KV reads — decode_step with batch = K+1 has exactly that
  // cost structure.
  const StepBreakdown draft_step = engine.decode_step(draft, draft_dtype, 1, ctx, pm);
  for (std::size_t k = 0; k < draft_tokens; ++k) {
    est.round_timeline.emit(trace::Phase::kDraft, draft_step.total_s(), 1, ctx,
                            trace::kPowerUnset, draft_step);
  }
  const StepBreakdown verify_step =
      engine.decode_step(target, target_dtype, draft_tokens + 1, ctx, pm);
  est.round_timeline.emit(trace::Phase::kVerify, verify_step.total_s(), draft_tokens + 1,
                          ctx, trace::kPowerUnset, verify_step);

  est.round_cost_s = est.round_timeline.now();
  est.draft_share = est.round_timeline.phase_time_s(trace::Phase::kDraft) / est.round_cost_s;
  est.speedup = est.tokens_per_round * est.baseline_step_s / est.round_cost_s;
  return est;
}

}  // namespace orinsim::sim
