#include "sim/dla.h"

#include <algorithm>

#include "core/error.h"
#include "sim/device.h"
#include "sim/roofline.h"

namespace orinsim::sim {

DlaCoExecution estimate_dla_coexecution(const ModelSpec& big, DType big_dtype,
                                        const ModelSpec& small, const DlaSpec& dla,
                                        const PowerMode& pm) {
  ORINSIM_CHECK(dla.cores >= 1, "dla: need at least one core");
  ORINSIM_CHECK(dla.efficiency > 0.0 && dla.dram_share > 0.0, "dla: degenerate spec");
  const DeviceSpec& device = orin_agx_64gb();
  const RooflineEngine roofline;

  DlaCoExecution result;

  // Small model on one DLA core, INT8 weights, single-stream decode.
  const double peak_bw = device.peak_bw_gbps(pm.mem_freq_mhz) * 1e9;
  const double dla_bw = peak_bw * dla.dram_share;
  const double weight_bytes = small.weight_gb(DType::kI8) * 1e9;
  const double mem_s = weight_bytes / dla_bw;
  const double compute_s =
      small.flops_per_token() / (dla.int8_tops_per_core * 1e12 * dla.efficiency);
  result.dla_step_s = std::max(mem_s, compute_s);
  result.dla_memory_bound = mem_s >= compute_s;
  result.dla_tps = 1.0 / result.dla_step_s;

  // Big model on the GPU, with and without the bandwidth contention.
  const std::size_t bs = 32, in = 32, out = 64;
  const double alone =
      roofline.prefill_s(big, big_dtype, bs, in, pm) +
      roofline.decode_phase(big, big_dtype, bs, in, out, pm).total_s();
  ModelSpec contended = big;
  contended.bw_efficiency *= (1.0 - dla.gpu_bw_penalty);
  const RooflineEngine engine2;
  const double shared =
      engine2.prefill_s(contended, big_dtype, bs, in, pm) +
      engine2.decode_phase(contended, big_dtype, bs, in, out, pm).total_s();

  const double tokens = static_cast<double>(bs) * static_cast<double>(in + out);
  result.gpu_tps_alone = tokens / alone;
  result.gpu_tps_shared = tokens / shared;
  result.gpu_degradation = 1.0 - result.gpu_tps_shared / result.gpu_tps_alone;
  result.added_power_w = dla.power_w_per_core;  // one active core
  return result;
}

}  // namespace orinsim::sim
