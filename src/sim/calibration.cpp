#include "sim/calibration.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "core/logging.h"
#include "sim/paper_reference.h"
#include "sim/roofline.h"

namespace orinsim::sim {

namespace {

struct Anchors {
  double latency_bs1 = 0.0;
  double latency_bs128 = 0.0;
  double latency_seq = 0.0;
  std::size_t seq_total = 1024;
};

Anchors anchors_for(const std::string& key) {
  const std::size_t idx = reference_model_index(key);
  Anchors a;
  for (const auto& row : table4_batch_wikitext2()) {
    if (row.batch_size == 1) a.latency_bs1 = row.latency_s[idx];
    if (row.batch_size == 128) a.latency_bs128 = row.latency_s[idx];
  }
  // Phi-2 OOMs beyond sl=256; its KV-overhead anchor uses sl=256.
  a.seq_total = (key == "phi2") ? 256 : 1024;
  for (const auto& row : table7_seq_wikitext2()) {
    if (row.seq_total == a.seq_total) a.latency_seq = row.latency_s[idx];
  }
  ORINSIM_CHECK(a.latency_bs1 > 0 && a.latency_bs128 > 0 && a.latency_seq > 0,
                "missing anchors for " + key);
  return a;
}

double latency_with(const ModelSpec& m, DType dt, std::size_t bs, std::size_t in,
                    std::size_t out) {
  return simulated_batch_latency_s(m, dt, bs, in, out, power_mode_maxn());
}

// The paper's A = B + C splits (input + output tokens) for each total
// sequence length. Mirrors workload::seq_config_for_total without taking a
// dependency on the workload library.
struct SeqSplit {
  std::size_t input;
  std::size_t output;
};

SeqSplit seq_split(std::size_t total) {
  switch (total) {
    case 96:
      return {32, 64};
    case 128:
      return {32, 96};
    case 256:
      return {64, 192};
    case 512:
      return {128, 384};
    case 1024:
      return {256, 768};
    default:
      ORINSIM_CHECK(false, "no sequence split for total " + std::to_string(total));
  }
  return {32, 64};
}

// Solve bw_efficiency so the bs=1 anchor is exact (bisection: latency is
// strictly decreasing in bandwidth efficiency).
void solve_bw_efficiency(ModelSpec& m, DType dt, const Anchors& a) {
  constexpr std::size_t kIn = 32, kOut = 64;
  double lo = 0.05, hi = 0.95;
  const double target = a.latency_bs1;
  ModelSpec probe = m;
  probe.bw_efficiency = hi;
  if (latency_with(probe, dt, 1, kIn, kOut) > target) {
    m.bw_efficiency = hi;
    return;
  }
  probe.bw_efficiency = lo;
  if (latency_with(probe, dt, 1, kIn, kOut) < target) {
    m.bw_efficiency = lo;
    return;
  }
  for (int iter = 0; iter < 48; ++iter) {
    const double mid = 0.5 * (lo + hi);
    probe.bw_efficiency = mid;
    if (latency_with(probe, dt, 1, kIn, kOut) > target) {
      lo = mid;  // too slow -> need more bandwidth
    } else {
      hi = mid;
    }
  }
  m.bw_efficiency = 0.5 * (lo + hi);
}

// Solve compute_efficiency so the bs=128 anchor matches (bisection: latency
// decreases monotonically in compute_efficiency).
void solve_compute_efficiency(ModelSpec& m, DType dt, const Anchors& a) {
  constexpr std::size_t kIn = 32, kOut = 64;
  double lo = 0.05, hi = 0.95;
  const double target = a.latency_bs128;
  ModelSpec probe = m;
  probe.compute_efficiency = hi;
  if (latency_with(probe, dt, 128, kIn, kOut) > target) {
    m.compute_efficiency = hi;  // even at best efficiency we are slower: clamp
    return;
  }
  probe.compute_efficiency = lo;
  if (latency_with(probe, dt, 128, kIn, kOut) < target) {
    m.compute_efficiency = lo;
    return;
  }
  for (int iter = 0; iter < 48; ++iter) {
    const double mid = 0.5 * (lo + hi);
    probe.compute_efficiency = mid;
    if (latency_with(probe, dt, 128, kIn, kOut) > target) {
      lo = mid;  // too slow -> need more efficiency
    } else {
      hi = mid;
    }
  }
  m.compute_efficiency = 0.5 * (lo + hi);
}

// Solve attn_kv_overhead so the sequence-length anchor matches (latency is
// linear in the overhead factor).
void solve_kv_overhead(ModelSpec& m, DType dt, const Anchors& a) {
  const SeqSplit sc = seq_split(a.seq_total);
  ModelSpec probe = m;
  probe.attn_kv_overhead = 0.0;
  const double base = latency_with(probe, dt, 32, sc.input, sc.output);
  probe.attn_kv_overhead = 10.0;
  const double with10 = latency_with(probe, dt, 32, sc.input, sc.output);
  const double per_unit = (with10 - base) / 10.0;
  ORINSIM_CHECK(per_unit > 0, "kv overhead has no effect for " + m.key);
  m.attn_kv_overhead = std::clamp((a.latency_seq - base) / per_unit, 0.0, 120.0);
}

double& slot_ref(ModelSpec& m, DType dt) {
  return dt == DType::kI8 ? m.quant_slowdown_i8 : m.quant_slowdown_i4;
}

// Solve the quantization slowdown so the end-to-end latency ratio at the
// paper's default workload (bs=32, sl=96) matches the target.
void solve_quant_slowdown(ModelSpec& m, DType baseline_dt, DType quant_dt,
                          double target_ratio) {
  constexpr std::size_t kIn = 32, kOut = 64;
  const double baseline = latency_with(m, baseline_dt, 32, kIn, kOut);
  const double target = target_ratio * baseline;
  // Latency is affine in the slowdown: evaluate at s=1 and s=2.
  ModelSpec probe = m;
  auto eval = [&](double s) {
    slot_ref(probe, quant_dt) = s;
    return latency_with(probe, quant_dt, 32, kIn, kOut);
  };
  const double at1 = eval(1.0);
  const double at2 = eval(2.0);
  const double per_unit = at2 - at1;
  ORINSIM_CHECK(per_unit > 0, "quant slowdown has no effect for " + m.key);
  slot_ref(m, quant_dt) = std::clamp(1.0 + (target - at1) / per_unit, 1.0, 12.0);
}

}  // namespace

double simulated_batch_latency_s(const ModelSpec& m, DType dt, std::size_t batch,
                                 std::size_t in_tokens, std::size_t out_tokens,
                                 const PowerMode& pm) {
  static const RooflineEngine engine;
  const double prefill = engine.prefill_s(m, dt, batch, in_tokens, pm);
  const double decode = engine.decode_phase(m, dt, batch, in_tokens, out_tokens, pm).total_s();
  return engine.run_overhead_s() + prefill + decode;
}

void calibrate_catalog(std::vector<ModelSpec>& catalog) {
  const auto& ratios = quant_latency_ratios();
  for (auto& m : catalog) {
    const Anchors a = anchors_for(m.key);
    const DType dt = m.default_dtype;
    // For DeepSeek-Qwen the anchors are INT8 runs: its INT8 slowdown must be
    // 1.0 (the inefficiency is folded into the fitted efficiencies).
    if (dt == DType::kI8) m.quant_slowdown_i8 = 1.0;

    // The three fits interact (kv overhead appears in the bs anchors, the
    // efficiencies in the seq anchor); a few fixed-point rounds converge.
    for (int round = 0; round < 6; ++round) {
      solve_bw_efficiency(m, dt, a);
      solve_compute_efficiency(m, dt, a);
      solve_kv_overhead(m, dt, a);
    }

    // Quantization slowdowns from the latency-ratio targets.
    for (const auto& r : ratios) {
      if (r.model_key != m.key) continue;
      if (dt == DType::kF16) {
        solve_quant_slowdown(m, DType::kF16, DType::kI8, r.int8_vs_fp16);
        solve_quant_slowdown(m, DType::kF16, DType::kI4, r.int4_vs_fp16);
      } else {
        // DeepSeek: INT4 target is relative to INT8.
        solve_quant_slowdown(m, DType::kI8, DType::kI4, r.int4_vs_fp16);
      }
    }
    LOG_DEBUG << "calibrated " << m.key << ": bw_eff=" << m.bw_efficiency
              << " compute_eff=" << m.compute_efficiency
              << " kv_overhead=" << m.attn_kv_overhead << " s8=" << m.quant_slowdown_i8
              << " s4=" << m.quant_slowdown_i4;
  }
}

std::vector<CalibrationResidual> calibration_residuals() {
  std::vector<CalibrationResidual> out;
  for (const auto& m : model_catalog()) {
    const Anchors a = anchors_for(m.key);
    const DType dt = m.default_dtype;
    CalibrationResidual r;
    r.model_key = m.key;
    r.bs1_rel_error = latency_with(m, dt, 1, 32, 64) / a.latency_bs1 - 1.0;
    r.bs128_rel_error = latency_with(m, dt, 128, 32, 64) / a.latency_bs128 - 1.0;
    const SeqSplit sc = seq_split(a.seq_total);
    r.seq_rel_error = latency_with(m, dt, 32, sc.input, sc.output) / a.latency_seq - 1.0;
    out.push_back(r);
  }
  return out;
}

}  // namespace orinsim::sim
