// DVFS power model of the Orin AGX under LLM inference.
//
// Total board power = idle + GPU + CPU + DRAM, with each dynamic component
// scaled by its power-mode frequency and its activity during the phase:
//
//   gpu_w = gpu_dyn * (f_gpu/f_max)^gpu_exp *
//           (compute_share * quant_activity + memory_share * stall_activity)
//     - quant_activity: the paper observes INT8 kernels at ~60% GPU
//       utilization vs 100% for INT4/FP16 (§3.3) — converted to a power
//       activity via a superlinear utilization->power curve.
//     - stall_activity: a memory-stalled GPU still burns scheduler power but
//       far less than when executing (drives the PM-H power drop).
//   cpu_w = cpu_dyn * (f_cpu/f_max)^cpu_exp * util * core_scale
//     - util follows the model's CPU-boundness (the same sensitivity that
//       stretches latency under PM-C/D).
//   mem_w = mem_dyn * (f_mem/f_max) * (achieved bytes / peak bytes)
//
// Constants are chosen to land MaxN decode at ~45-55W (the Orin AGX's
// envelope) and to reproduce the §3.4 relative deltas; see
// tests/sim/power_model_test.cpp for the asserted targets.
#pragma once

#include "sim/device.h"
#include "sim/model_catalog.h"
#include "sim/power_mode.h"
#include "sim/roofline.h"
#include "tensor/dtype.h"

namespace orinsim::sim {

struct PowerModelParams {
  double idle_w = 10.0;     // SoC + carrier board + RAM refresh + desktop
  double gpu_dyn_w = 45.0;  // GPU dynamic power at max clock, full activity
  double cpu_dyn_w = 22.0;  // 12-core cluster fully busy at 2.2 GHz
  double mem_dyn_w = 9.0;   // DRAM interface at full bandwidth
  double gpu_freq_exponent = 2.2;  // P ~ f V^2 with V roughly linear in f
  double cpu_freq_exponent = 2.2;
  double stall_activity = 0.30;      // GPU activity while memory-stalled
  // Utilization -> power curve: 60%-utilized INT8 kernels must draw less
  // than a memory-stalled FP16 pipeline (paper: INT8 power < FP16 at every
  // batch size), hence 0.6^2.5 ~ 0.28 < stall_activity.
  double activity_power_exponent = 2.5;
  double board_cap_w = 62.0;         // thermal/electrical envelope
};

struct PowerEstimate {
  double gpu_w = 0.0;
  double cpu_w = 0.0;
  double mem_w = 0.0;
  double idle_w = 0.0;
  double total_w() const { return gpu_w + cpu_w + mem_w + idle_w; }
};

class PowerModel {
 public:
  explicit PowerModel(const DeviceSpec& device = orin_agx_64gb(),
                      PowerModelParams params = {})
      : device_(device), params_(params) {}

  const PowerModelParams& params() const noexcept { return params_; }

  // Board power during a decode phase described by `step` (per-step
  // breakdown at some context position). bytes_per_step: DRAM traffic per
  // step (weights + KV), for the memory component.
  PowerEstimate decode_power(const ModelSpec& m, DType dt, const StepBreakdown& step,
                             const PowerMode& pm) const;

  // Board power during prefill (compute-dominated, high GPU activity).
  PowerEstimate prefill_power(const ModelSpec& m, DType dt, const PowerMode& pm) const;

  // Idle power under a power mode (between runs).
  double idle_w() const { return params_.idle_w; }

 private:
  double gpu_component(double compute_share, double mem_share, double quant_util,
                       const PowerMode& pm) const;
  double cpu_component(const ModelSpec& m, const PowerMode& pm, double util) const;

  DeviceSpec device_;
  PowerModelParams params_;
};

}  // namespace orinsim::sim
