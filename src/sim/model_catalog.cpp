#include "sim/model_catalog.h"

#include "core/error.h"
#include "sim/calibration.h"

namespace orinsim::sim {

double ModelSpec::weight_gb(DType dt) const {
  switch (dt) {
    case DType::kF32:
      return weight_gb_f32;
    case DType::kF16:
      return weight_gb_f16;
    case DType::kI8:
      return weight_gb_i8;
    case DType::kI4:
      return weight_gb_i4;
  }
  return weight_gb_f16;
}

double ModelSpec::kv_bytes_per_token(bool int8_cache) const {
  const double kv_dim = static_cast<double>(n_kv_heads) * (d_model / n_heads);
  const double bytes_per_element = int8_cache ? 1.0 : 2.0;
  const double scale_overhead = int8_cache ? 4.0 /*fp32 scale per vector*/ : 0.0;
  return 2.0 /*K+V*/ * static_cast<double>(n_layers) *
         (kv_dim * bytes_per_element + scale_overhead);
}

double ModelSpec::flops_per_token() const { return 2.0 * params_b * 1e9; }

double ModelSpec::derived_weight_gb(DType dt) const {
  // Body parameters quantize; embeddings (tied or not, ~vocab*d_model) stay
  // FP16 under BitsAndBytes; INT8/INT4 carry scale metadata (~1/64 and ~1/16
  // overhead respectively).
  const double embed_params = static_cast<double>(vocab) * static_cast<double>(d_model);
  const double body_params = params_b * 1e9 - embed_params;
  double body_bytes = 0.0;
  switch (dt) {
    case DType::kF32:
      return (params_b * 1e9) * 4.0 / 1e9;
    case DType::kF16:
      return (params_b * 1e9) * 2.0 / 1e9;
    case DType::kI8:
      body_bytes = body_params * 1.0 * (1.0 + 1.0 / 64.0);
      break;
    case DType::kI4:
      body_bytes = body_params * 0.5 * (1.0 + 1.0 / 16.0);
      break;
  }
  return (body_bytes + embed_params * 2.0) / 1e9;
}

double ModelSpec::quant_slowdown(DType dt) const {
  switch (dt) {
    case DType::kF32:
    case DType::kF16:
      return 1.0;
    case DType::kI8:
      return quant_slowdown_i8;
    case DType::kI4:
      return quant_slowdown_i4;
  }
  return 1.0;
}

double ModelSpec::gpu_activity(DType dt) const {
  switch (dt) {
    case DType::kF32:
    case DType::kF16:
      return 1.0;
    case DType::kI8:
      return gpu_activity_i8;
    case DType::kI4:
      return gpu_activity_i4;
  }
  return 1.0;
}

namespace {

std::vector<ModelSpec> build_catalog() {
  std::vector<ModelSpec> catalog;

  {
    ModelSpec m;
    m.key = "phi2";
    m.display = "MS-Phi2";
    m.hf_name = "microsoft/phi-2";
    m.params_b = 2.78;
    m.n_layers = 32;
    m.d_model = 2560;
    m.n_heads = 32;
    m.n_kv_heads = 32;  // full MHA
    m.d_ff = 10240;
    m.vocab = 51200;
    m.weight_gb_f32 = 11.2;
    m.weight_gb_f16 = 5.6;
    m.weight_gb_i8 = 3.0;
    m.weight_gb_i4 = 1.8;
    m.default_dtype = DType::kF16;
    // HF's Phi-2 uses the eager attention path: fp32 score tensors persist
    // for every layer during prefill. This is what drives its OOM at
    // bs=32, sl=512 despite a 5.6 GB model (Table 6).
    m.attn_quad_layers = 32.0;
    m.act_mb_per_seq = 6.0;
    m.fixed_overhead_gb = 0.45;
    catalog.push_back(m);
  }
  {
    ModelSpec m;
    m.key = "llama3";
    m.display = "Llama3";
    m.hf_name = "meta-llama/Llama-3.1-8B";
    m.params_b = 8.03;
    m.n_layers = 32;
    m.d_model = 4096;
    m.n_heads = 32;
    m.n_kv_heads = 8;  // GQA 4:1
    m.d_ff = 14336;
    m.vocab = 128256;
    m.weight_gb_f32 = 32.2;
    m.weight_gb_f16 = 16.1;
    m.weight_gb_i8 = 9.1;
    m.weight_gb_i4 = 5.6;
    m.default_dtype = DType::kF16;
    // SDPA math backend on Jetson still materializes scores for ~2 layers'
    // worth at peak.
    m.attn_quad_layers = 2.0;
    m.act_mb_per_seq = 8.0;
    m.fixed_overhead_gb = 0.25;
    catalog.push_back(m);
  }
  {
    ModelSpec m;
    m.key = "mistral";
    m.display = "Mistral-Base";
    m.hf_name = "mistralai/Mistral-Small-24B-Base-2501";
    m.params_b = 23.6;
    m.n_layers = 40;
    m.d_model = 5120;
    m.n_heads = 32;
    m.n_kv_heads = 8;
    m.d_ff = 32768;
    m.vocab = 131072;
    m.weight_gb_f32 = 94.2;
    m.weight_gb_f16 = 47.1;
    m.weight_gb_i8 = 24.9;
    m.weight_gb_i4 = 13.8;
    m.default_dtype = DType::kF16;
    m.attn_quad_layers = 0.5;
    m.act_mb_per_seq = 6.0;
    m.fixed_overhead_gb = 0.2;
    catalog.push_back(m);
  }
  {
    ModelSpec m;
    m.key = "deepseek-qwen";
    m.display = "Deepseek-Qwen";
    m.hf_name = "deepseek-ai/DeepSeek-R1-Distill-Qwen-32B";
    m.params_b = 32.8;
    m.n_layers = 64;
    m.d_model = 5120;
    m.n_heads = 40;
    m.n_kv_heads = 8;
    m.d_ff = 27648;
    m.vocab = 152064;
    m.weight_gb_f32 = 124.0;
    m.weight_gb_f16 = 62.0;
    m.weight_gb_i8 = 34.3;
    m.weight_gb_i4 = 18.7;
    m.default_dtype = DType::kI8;  // only precision that fits
    m.attn_quad_layers = 1.0;
    m.act_mb_per_seq = 40.0;  // LLM.int8() fp16 activation copies + buffers
    m.fixed_overhead_gb = 0.3;
    catalog.push_back(m);
  }

  calibrate_catalog(catalog);
  return catalog;
}

}  // namespace

const std::vector<ModelSpec>& model_catalog() {
  static const std::vector<ModelSpec> kCatalog = build_catalog();
  return kCatalog;
}

const ModelSpec& model_by_key(const std::string& key) {
  for (const auto& m : model_catalog()) {
    if (m.key == key) return m;
  }
  ORINSIM_CHECK(false, "unknown model key: " + key);
  return model_catalog().front();
}

}  // namespace orinsim::sim
