// The nine power modes the paper evaluates (Table 2). Custom modes vary one
// resource axis at a time against MaxN: GPU frequency (A, B), CPU frequency
// (C, D), online CPU cores (E, F), and memory frequency (G, H).
#pragma once

#include <string>
#include <vector>

namespace orinsim::sim {

struct PowerMode {
  std::string name;
  double gpu_freq_mhz = 1301.0;
  double cpu_freq_ghz = 2.2;
  int cpu_cores_online = 12;
  double mem_freq_mhz = 3200.0;
};

// MaxN (the default, fastest mode).
PowerMode power_mode_maxn();

// Mode by name: "MaxN", "A".."H" (case-insensitive).
PowerMode power_mode_by_name(const std::string& name);

// All nine modes in the paper's Table 2 order.
const std::vector<PowerMode>& all_power_modes();

// The GPU-frequency ladder MaxN -> A -> B: the one Table 2 axis where
// stepping down monotonically lowers board power (§3.4 — the modes the
// paper recommends under instantaneous power caps). This is the default
// descent a power/thermal governor walks when a cap or throttle trips.
const std::vector<PowerMode>& gpu_frequency_ladder();

}  // namespace orinsim::sim
