// Catalog calibration: fits each model's efficiency constants against a
// small, fixed set of paper measurements. Everything else the simulator
// produces is a prediction.
//
// Fitted (per model, from the paper's appendix):
//   bw_efficiency      <- Table 4 latency at bs=1   (decode is weight-bound)
//   compute_efficiency <- Table 4 latency at bs=128 (decode turns compute-bound)
//   attn_kv_overhead   <- Table 7 latency at sl=1024 (sl=256 for Phi-2, which
//                         OOMs beyond that)
//   quant_slowdown_i8/i4 <- the Fig 3 / appendix A.3 latency ratios
// Fixed priors (not fitted): launch_ms = 0.08ms * n_layers, prefill
// efficiency boost, run overhead, CPU sensitivities.
//
// Predicted (used for EXPERIMENTS.md validation): every other batch size,
// sequence length, dataset, power mode, and the LongBench tables.
#pragma once

#include <vector>

#include "sim/model_catalog.h"
#include "sim/power_mode.h"

namespace orinsim::sim {

struct CalibrationResidual {
  std::string model_key;
  double bs1_rel_error = 0.0;    // (sim - paper) / paper at the bs=1 anchor
  double bs128_rel_error = 0.0;  // at the bs=128 anchor
  double seq_rel_error = 0.0;    // at the sequence-length anchor
};

// Fits the calibration slots of every ModelSpec in place.
void calibrate_catalog(std::vector<ModelSpec>& catalog);

// Re-simulates the anchors with the calibrated catalog and reports the
// residuals (used by tests to guarantee the fit converged).
std::vector<CalibrationResidual> calibration_residuals();

// End-to-end simulated latency for one batch, seconds (overhead + prefill +
// decode). Shared by calibration and InferenceSim so both see the same model.
double simulated_batch_latency_s(const ModelSpec& m, DType dt, std::size_t batch,
                                 std::size_t in_tokens, std::size_t out_tokens,
                                 const PowerMode& pm);

}  // namespace orinsim::sim
