#include "sim/thermal.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "trace/timeline.h"

namespace orinsim::sim {

double ThermalModel::step_temperature(double temp_c, double power_w, double dt_s) const {
  ORINSIM_CHECK(dt_s >= 0.0, "thermal step: negative dt");
  // Exact solution of the linear RC over dt (stable for any dt).
  const double t_eq = equilibrium_c(power_w);
  const double alpha = std::exp(-dt_s / params_.tau_s);
  return t_eq + (temp_c - t_eq) * alpha;
}

double ThermalModel::equilibrium_c(double power_w) const {
  return params_.ambient_c + power_w * params_.r_th_c_per_w;
}

double ThermalModel::gpu_throttle(double temp_c) const {
  if (temp_c <= params_.throttle_start_c) return 1.0;
  if (temp_c >= params_.hard_limit_c) return params_.throttle_min_ratio;
  const double span = params_.hard_limit_c - params_.throttle_start_c;
  const double frac = (temp_c - params_.throttle_start_c) / span;
  return 1.0 - frac * (1.0 - params_.throttle_min_ratio);
}

ThermalRunResult simulate_with_thermals(const SimRequest& request,
                                        const ThermalParams& params,
                                        double initial_temp_c) {
  const ModelSpec& m = model_by_key(request.model_key);
  const InferenceSim sim;
  const RooflineEngine& roofline = sim.roofline();
  const PowerModel& power = sim.power_model();
  const ThermalModel thermal(params);

  // Memory does not depend on thermals; take the OOM verdict and the ideal
  // (non-thermal) latency from the plain simulator.
  ThermalRunResult result;
  {
    SimRequest ideal = request;
    ideal.noise_sigma = 0.0;
    const SimResult r = sim.run(ideal);
    ORINSIM_CHECK(!r.oom, "thermal run: workload OOMs");
    result.ideal_latency_s = r.latency_s;
  }

  double temp = initial_temp_c < 0.0 ? params.ambient_c : initial_temp_c;
  double throttled_time = 0.0;
  double next_sample = 0.0;

  // The thermal loop is a scheduler like any other: it emits StepEvents into
  // a timeline and latency/energy are derived from the event stream. Only
  // the temperature/throttle feedback state stays local.
  trace::ExecutionTimeline timeline;

  auto record = [&](double watts, double ratio) {
    if (timeline.now() >= next_sample) {
      result.trace.push_back(ThermalSample{timeline.now(), temp, watts, ratio});
      next_sample += 2.0;
    }
    result.peak_temp_c = std::max(result.peak_temp_c, temp);
  };

  auto throttled_mode = [&](double ratio) {
    PowerMode pm = request.power_mode;
    pm.gpu_freq_mhz *= ratio;
    return pm;
  };

  // Setup phase. No power attached: the seed accounting never charged setup
  // energy to the thermal budget, and deriving energy from the timeline must
  // not change that.
  timeline.emit(trace::Phase::kSetup, roofline.run_overhead_s(), request.batch);
  temp = thermal.step_temperature(temp, power.idle_w() + 4.0, roofline.run_overhead_s());
  record(power.idle_w() + 4.0, 1.0);

  // Prefill under the current throttle (recomputed once; prefill is short
  // relative to tau).
  {
    const double ratio = thermal.gpu_throttle(temp);
    const PowerMode pm = throttled_mode(ratio);
    const double dt = roofline.prefill_s(m, request.dtype, request.batch,
                                         request.in_tokens, pm);
    const double watts = power.prefill_power(m, request.dtype, pm).total_w();
    timeline.emit(trace::Phase::kPrefill, dt, request.batch,
                  static_cast<double>(request.in_tokens), watts);
    temp = thermal.step_temperature(temp, watts, dt);
    if (ratio < 1.0) throttled_time += dt;
    record(watts, ratio);
  }

  // Decode: per-token feedback between temperature and throttle.
  for (std::size_t t = 0; t < request.out_tokens; ++t) {
    const double ratio = thermal.gpu_throttle(temp);
    const PowerMode pm = throttled_mode(ratio);
    const double ctx = static_cast<double>(request.in_tokens + t);
    const StepBreakdown step = roofline.decode_step(m, request.dtype, request.batch, ctx,
                                                    pm, request.kv_cache_int8);
    const double dt = step.total_s();
    const double watts = power.decode_power(m, request.dtype, step, pm).total_w();
    timeline.emit(trace::Phase::kDecode, dt, request.batch, ctx, watts, step);
    temp = thermal.step_temperature(temp, watts, dt);
    if (ratio < 1.0) throttled_time += dt;
    record(watts, ratio);
  }

  // Powered time = prefill + decode: throttled prefill time counts in the
  // numerator, so the denominator must cover the same window or a prefill-
  // heavy hot-start run reports a fraction above 1.
  const double powered_time = timeline.phase_time_s(trace::Phase::kPrefill) +
                              timeline.phase_time_s(trace::Phase::kDecode);
  result.latency_s = timeline.now();
  result.energy_j = timeline.total_energy_j();
  result.final_temp_c = temp;
  result.throttled_fraction = powered_time > 0.0 ? throttled_time / powered_time : 0.0;
  return result;
}

}  // namespace orinsim::sim
