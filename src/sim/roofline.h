// Roofline-style timing model of batched LLM inference on the Orin AGX.
//
// Decode (one token per sequence per step) is modeled as:
//
//   gpu_s  = (weight_s + compute_s) * quant_slowdown + kv_s + launch_s
//   step_s = gpu_s * cpu_stretch(power_mode)
//
//   weight_s : all model weights stream from DRAM once per step (the
//              defining property that makes decode memory-bound, §3.2/[11])
//   kv_s     : KV-cache traffic, batch * kv_bytes/token * context position,
//              multiplied by the calibrated eager-attention overhead factor
//   compute_s: batch * 2*params FLOPs against the effective FP16 tensor-core
//              throughput (FP32 runs on the CUDA-core peak instead)
//   launch_s : per-step host/driver cost
//   quant_slowdown: BitsAndBytes INT8/INT4 kernel inefficiency (§3.3)
//   cpu_stretch: per-model sensitivity of step time to CPU frequency and
//              online-core count (§3.4, PM-C/D/E/F)
//
// Prefill processes batch*input tokens in parallel GEMMs:
//   prefill_s = max(flops / prefill_flops, weights / bw) * slowdown * stretch
//
// All efficiency constants live in ModelSpec and are fitted once by
// calibration.cpp; see that file for what is anchored vs predicted.
#pragma once

#include "sim/device.h"
#include "sim/model_catalog.h"
#include "sim/power_mode.h"
#include "tensor/dtype.h"
#include "trace/step_event.h"

namespace orinsim::sim {

// The step decomposition now lives in the trace spine (trace/step_event.h)
// so StepEvents can carry it without the trace layer depending on the
// simulator; this alias keeps the historical sim::StepBreakdown name.
using StepBreakdown = trace::StepBreakdown;

// Per-model CPU sensitivity of step time (dimensionless, multiplies the
// relative CPU slowdown). Catalog-level calibration data, exposed for tests.
struct CpuSensitivity {
  double freq = 0.4;   // step stretch per unit of (f_max/f - 1)
  double cores = 0.01; // step stretch per unit of (12/cores - 1)
};
CpuSensitivity cpu_sensitivity(const ModelSpec& model);

class RooflineEngine {
 public:
  explicit RooflineEngine(const DeviceSpec& device = orin_agx_64gb()) : device_(device) {}

  const DeviceSpec& device() const noexcept { return device_; }

  // Effective DRAM bandwidth (bytes/s) and compute throughput (FLOP/s) for a
  // model under a power mode.
  double effective_bw_bytes(const ModelSpec& m, const PowerMode& pm) const;
  double effective_flops(const ModelSpec& m, DType dt, const PowerMode& pm) const;

  // Multiplier >= 1 applied to step time from CPU frequency / core count.
  double cpu_stretch(const ModelSpec& m, const PowerMode& pm) const;

  // One decode step with every sequence at context position `ctx`.
  // kv_cache_int8 halves KV traffic (at a small dequantization overhead).
  StepBreakdown decode_step(const ModelSpec& m, DType dt, std::size_t batch, double ctx,
                            const PowerMode& pm, bool kv_cache_int8 = false) const;

  // Whole decode phase: out_tokens steps with context in_tokens..in+out-1.
  // Uses the closed form for the KV sum (it is linear in position).
  StepBreakdown decode_phase(const ModelSpec& m, DType dt, std::size_t batch,
                             std::size_t in_tokens, std::size_t out_tokens,
                             const PowerMode& pm, bool kv_cache_int8 = false) const;

  // Prefill of batch*in_tokens prompt tokens.
  double prefill_s(const ModelSpec& m, DType dt, std::size_t batch, std::size_t in_tokens,
                   const PowerMode& pm) const;

  // Fixed per-run overhead (tokenization, host setup), seconds.
  double run_overhead_s() const { return 0.25; }

 private:
  DeviceSpec device_;
};

}  // namespace orinsim::sim
