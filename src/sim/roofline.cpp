#include "sim/roofline.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace orinsim::sim {

CpuSensitivity cpu_sensitivity(const ModelSpec& model) {
  // §3.4 latency observations: PM-C (CPU 1.7 GHz) slows Phi-2 by ~1.3% and
  // Mistral by ~14%; C/D slow Llama by ~25% on average; DeepSeek-Qwen is the
  // most CPU-sensitive ("likely using CPU to assist with quantization").
  // Core count (PM-E/F) has negligible impact for all models.
  if (model.key == "phi2") return {0.045, 0.005};
  if (model.key == "llama3") return {0.45, 0.01};
  if (model.key == "mistral") return {0.48, 0.01};
  if (model.key == "deepseek-qwen") return {0.90, 0.015};
  return {0.4, 0.01};
}

double RooflineEngine::effective_bw_bytes(const ModelSpec& m, const PowerMode& pm) const {
  // Achieved bandwidth also sags when the GPU is down-clocked: matvec loads
  // are issued by the SMs, so a slower GPU cannot keep as many requests in
  // flight (this is why PM-A costs ~26% latency on a memory-bound decode,
  // not just the compute share).
  const double gpu_ratio = std::min(1.0, pm.gpu_freq_mhz / device_.gpu_max_freq_mhz);
  const double issue_factor = std::pow(gpu_ratio, 0.60);
  return device_.peak_bw_gbps(pm.mem_freq_mhz) * 1e9 * m.bw_efficiency * issue_factor;
}

double RooflineEngine::effective_flops(const ModelSpec& m, DType dt,
                                       const PowerMode& pm) const {
  const double freq_ratio = std::min(1.0, pm.gpu_freq_mhz / device_.gpu_max_freq_mhz);
  // FP32 runs on CUDA cores; FP16/INT8/INT4 go through tensor cores (the
  // quantized paths still compute in FP16 after dequantization).
  const double peak_tflops =
      (dt == DType::kF32) ? device_.gpu_fp32_tflops_max : device_.gpu_fp16_tflops_max;
  return peak_tflops * 1e12 * freq_ratio * m.compute_efficiency;
}

double RooflineEngine::cpu_stretch(const ModelSpec& m, const PowerMode& pm) const {
  const CpuSensitivity sens = cpu_sensitivity(m);
  const double freq_term = device_.cpu_max_freq_ghz / pm.cpu_freq_ghz - 1.0;
  const double core_term =
      static_cast<double>(device_.cpu_cores) / static_cast<double>(pm.cpu_cores_online) -
      1.0;
  return 1.0 + sens.freq * std::max(0.0, freq_term) + sens.cores * std::max(0.0, core_term);
}

StepBreakdown RooflineEngine::decode_step(const ModelSpec& m, DType dt, std::size_t batch,
                                          double ctx, const PowerMode& pm,
                                          bool kv_cache_int8) const {
  ORINSIM_CHECK(batch > 0, "decode_step: batch must be positive");
  StepBreakdown s;
  const double bw = effective_bw_bytes(m, pm);
  const double flops = effective_flops(m, dt, pm);
  // KV reads are long contiguous streams and run near peak DRAM efficiency
  // regardless of the model's kernel efficiency; the calibrated
  // attn_kv_overhead captures the eager-attention inflation instead.
  constexpr double kStreamEfficiency = 0.9;
  const double kv_bw = device_.peak_bw_gbps(pm.mem_freq_mhz) * 1e9 * kStreamEfficiency;

  s.weight_s = m.weight_gb(dt) * 1e9 / bw;
  // INT8 KV halves the traffic but pays a dequantization kernel overhead.
  const double kv_overhead = kv_cache_int8 ? 1.15 : 1.0;
  s.kv_s = static_cast<double>(batch) * m.kv_bytes_per_token(kv_cache_int8) *
           std::max(0.0, ctx) * m.attn_kv_overhead * kv_overhead / kv_bw;
  s.compute_s = static_cast<double>(batch) * m.flops_per_token() / flops;
  s.launch_s = m.launch_ms / 1e3;

  const double slowdown = m.quant_slowdown(dt);
  s.quant_extra_s = (s.weight_s + s.compute_s) * (slowdown - 1.0);

  const double stretch = cpu_stretch(m, pm);
  s.cpu_stretch_s =
      (s.weight_s + s.kv_s + s.compute_s + s.launch_s + s.quant_extra_s) * (stretch - 1.0);
  return s;
}

StepBreakdown RooflineEngine::decode_phase(const ModelSpec& m, DType dt, std::size_t batch,
                                           std::size_t in_tokens, std::size_t out_tokens,
                                           const PowerMode& pm,
                                           bool kv_cache_int8) const {
  ORINSIM_CHECK(out_tokens > 0, "decode_phase: need at least one output token");
  // KV term is linear in context position; the mean position over the decode
  // phase gives the exact sum.
  const double mean_ctx =
      static_cast<double>(in_tokens) + (static_cast<double>(out_tokens) - 1.0) / 2.0;
  StepBreakdown per_step = decode_step(m, dt, batch, mean_ctx, pm, kv_cache_int8);
  StepBreakdown total;
  const double n = static_cast<double>(out_tokens);
  total.weight_s = per_step.weight_s * n;
  total.kv_s = per_step.kv_s * n;
  total.compute_s = per_step.compute_s * n;
  total.launch_s = per_step.launch_s * n;
  total.quant_extra_s = per_step.quant_extra_s * n;
  total.cpu_stretch_s = per_step.cpu_stretch_s * n;
  return total;
}

double RooflineEngine::prefill_s(const ModelSpec& m, DType dt, std::size_t batch,
                                 std::size_t in_tokens, const PowerMode& pm) const {
  ORINSIM_CHECK(in_tokens > 0, "prefill_s: need at least one input token");
  const double bw = effective_bw_bytes(m, pm);
  // Prefill GEMMs batch all prompt tokens; they run closer to peak than the
  // per-token decode matvecs.
  constexpr double kPrefillEfficiencyBoost = 1.7;
  const double flops = std::min(effective_flops(m, dt, pm) * kPrefillEfficiencyBoost,
                                ((dt == DType::kF32) ? device_.gpu_fp32_tflops_max
                                                     : device_.gpu_fp16_tflops_max) *
                                    1e12 * (pm.gpu_freq_mhz / device_.gpu_max_freq_mhz) *
                                    0.90);
  const double tokens = static_cast<double>(batch) * static_cast<double>(in_tokens);
  const double compute_time = tokens * m.flops_per_token() / flops;
  const double weight_time = m.weight_gb(dt) * 1e9 / bw;
  const double base = std::max(compute_time, weight_time) * m.quant_slowdown(dt);
  return base * cpu_stretch(m, pm);
}

}  // namespace orinsim::sim
