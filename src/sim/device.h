// Hardware description of the NVIDIA Jetson Orin AGX Developer Kit 64GB,
// the platform of the paper's study.
//
// Sources for the constants:
//  - 2048 CUDA cores (Ampere, 16 SMs) at 1301 MHz max GPU clock
//  - 64 tensor cores; dense FP16 tensor-core throughput ~21.2 TFLOPS at max
//    clock (85 INT8 sparse TOPS => 42.5 dense INT8 => 21.2 dense FP16)
//  - 12-core Arm Cortex-A78AE at 2.2 GHz
//  - 256-bit LPDDR5 at 3200 MHz -> 204.8 GB/s peak bandwidth
//  - 64 GB RAM shared between CPU and GPU; JetPack 6 + desktop + CUDA
//    context reserve a few GB before any model loads.
#pragma once

#include <cmath>
#include <string>

namespace orinsim::sim {

struct DeviceSpec {
  std::string name = "NVIDIA Jetson Orin AGX 64GB";

  // GPU
  double gpu_cuda_cores = 2048;
  double gpu_max_freq_mhz = 1301.0;
  double gpu_fp16_tflops_max = 21.2;  // tensor-core dense FP16 at max clock
  double gpu_fp32_tflops_max = 5.33;  // CUDA-core FMA at max clock

  // CPU
  int cpu_cores = 12;
  double cpu_max_freq_ghz = 2.2;

  // Memory
  double mem_max_freq_mhz = 3200.0;
  double mem_bus_bytes = 32.0;  // 256-bit interface
  // Peak bandwidth scales with DDR frequency; the effective-bandwidth
  // exponent >1 models the efficiency loss at low memory clocks (timing
  // overheads do not scale down), which the paper's PM-H latencies expose.
  double mem_bw_freq_exponent = 1.2;

  // Shared RAM
  double total_ram_gb = 64.0;
  // OS + desktop + JetPack services + CUDA context before any model loads.
  double os_reserved_gb = 3.5;

  double peak_bw_gbps(double mem_freq_mhz) const {
    // LPDDR5 double data rate: 2 transfers/cycle * bus bytes.
    const double peak_at_max = 2.0 * mem_max_freq_mhz * 1e6 * mem_bus_bytes / 1e9;
    double ratio = mem_freq_mhz / mem_max_freq_mhz;
    if (ratio > 1.0) ratio = 1.0;
    double scaled = peak_at_max;
    if (ratio < 1.0) {
      scaled = peak_at_max * std::pow(ratio, mem_bw_freq_exponent);
    }
    return scaled;
  }

  double peak_fp16_tflops(double gpu_freq_mhz) const {
    return gpu_fp16_tflops_max * (gpu_freq_mhz / gpu_max_freq_mhz);
  }

  double usable_ram_gb() const { return total_ram_gb - os_reserved_gb; }
};

inline const DeviceSpec& orin_agx_64gb() {
  static const DeviceSpec spec;
  return spec;
}

}  // namespace orinsim::sim
