#include "sim/inference_sim.h"

#include <algorithm>

#include "core/error.h"
#include "core/rng.h"
#include "sim/calibration.h"

namespace orinsim::sim {

telemetry::PowerSignal InferenceSim::build_signal(const ModelSpec& m,
                                                  const SimRequest& request,
                                                  double* latency_out, double* prefill_out,
                                                  StepBreakdown* mean_step_out) const {
  const DType dt = request.dtype;
  const PowerMode& pm = request.power_mode;

  telemetry::PowerSignal signal;

  // Host-side setup (tokenization, buffer allocation) at idle-ish power.
  const double overhead = roofline_.run_overhead_s() * request.latency_scale;
  signal.append(overhead, power_.idle_w() + 4.0);

  // Prefill phase: compute-saturated.
  const double prefill =
      roofline_.prefill_s(m, dt, request.batch, request.in_tokens, pm) *
      request.latency_scale;
  signal.append(prefill, power_.prefill_power(m, dt, pm).total_w());

  // Decode phase: one segment per output token; power drifts as the KV share
  // of the step grows with context.
  StepBreakdown mean_step{};
  for (std::size_t t = 0; t < request.out_tokens; ++t) {
    const double ctx = static_cast<double>(request.in_tokens + t);
    const StepBreakdown step =
        roofline_.decode_step(m, dt, request.batch, ctx, pm, request.kv_cache_int8);
    const double watts = power_.decode_power(m, dt, step, pm).total_w();
    signal.append(step.total_s() * request.latency_scale, watts);
    mean_step.weight_s += step.weight_s;
    mean_step.kv_s += step.kv_s;
    mean_step.compute_s += step.compute_s;
    mean_step.launch_s += step.launch_s;
    mean_step.quant_extra_s += step.quant_extra_s;
    mean_step.cpu_stretch_s += step.cpu_stretch_s;
  }
  const double n = static_cast<double>(request.out_tokens);
  mean_step.weight_s /= n;
  mean_step.kv_s /= n;
  mean_step.compute_s /= n;
  mean_step.launch_s /= n;
  mean_step.quant_extra_s /= n;
  mean_step.cpu_stretch_s /= n;

  if (latency_out != nullptr) *latency_out = signal.duration_s();
  if (prefill_out != nullptr) *prefill_out = prefill;
  if (mean_step_out != nullptr) *mean_step_out = mean_step;
  return signal;
}

SimResult InferenceSim::run(const SimRequest& request) const {
  ORINSIM_CHECK(request.batch > 0 && request.in_tokens > 0 && request.out_tokens > 0,
                "SimRequest: batch/in/out must be positive");
  ORINSIM_CHECK(request.runs > 0, "SimRequest: need at least one measured run");
  const ModelSpec& m = model_by_key(request.model_key);

  SimResult result;
  result.memory = memory_.workload_memory(m, request.dtype, request.batch,
                                          request.in_tokens, request.out_tokens,
                                          request.kv_cache_int8);
  result.model_load_oom = memory_.model_oom(m, request.dtype);
  result.oom = result.model_load_oom || memory_.workload_oom(result.memory);
  if (result.oom) return result;

  double base_latency = 0.0;
  double prefill = 0.0;
  StepBreakdown mean_step{};
  const telemetry::PowerSignal signal =
      build_signal(m, request, &base_latency, &prefill, &mean_step);
  result.prefill_s = prefill;
  result.mean_decode_step = mean_step;
  // Time to first token: setup + prefill + the first decode step.
  result.ttft_s =
      roofline_.run_overhead_s() * request.latency_scale + prefill +
      roofline_
          .decode_step(m, request.dtype, request.batch,
                       static_cast<double>(request.in_tokens), request.power_mode,
                       request.kv_cache_int8)
          .total_s() *
          request.latency_scale;

  Rng rng(request.seed);
  const telemetry::PowerSampler sampler(2.0, request.noise_sigma);
  telemetry::RunAggregator agg(/*warmup_runs=*/1);

  const std::size_t total_runs = request.runs + 1;  // + warm-up
  const double total_tokens =
      static_cast<double>(request.batch) *
      static_cast<double>(request.in_tokens + request.out_tokens);

  for (std::size_t r = 0; r < total_runs; ++r) {
    // Run-to-run latency jitter (background load, thermal state). The warm-up
    // run is slower: model pages in from SSD and CUDA kernels JIT.
    double jitter = 1.0 + request.noise_sigma * rng.normal();
    if (r == 0) jitter *= 1.3;
    jitter = std::max(0.5, jitter);

    telemetry::PowerSignal run_signal = signal;
    for (auto& t : run_signal.t_s) t *= jitter;

    const telemetry::SampledTrace trace = sampler.sample(run_signal, rng);
    const telemetry::BatchPowerStats stats = telemetry::summarize(trace);

    telemetry::RunMetrics metrics;
    metrics.latency_s = run_signal.duration_s();
    metrics.throughput_tps = total_tokens / metrics.latency_s;
    metrics.median_power_w = stats.median_power_w;
    metrics.energy_j = stats.energy_j;
    agg.add(metrics);

    if (r == 1) result.trace = trace;  // first measured run
  }

  const telemetry::RunMetrics mean = agg.mean();
  result.latency_s = mean.latency_s;
  result.throughput_tps = mean.throughput_tps;
  result.median_power_w = mean.median_power_w;
  result.energy_j = mean.energy_j;
  return result;
}

}  // namespace orinsim::sim
