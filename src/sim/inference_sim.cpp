#include "sim/inference_sim.h"

#include <algorithm>

#include "core/error.h"
#include "core/rng.h"
#include "sim/calibration.h"

namespace orinsim::sim {

trace::ExecutionTimeline InferenceSim::build_timeline(const ModelSpec& m,
                                                      const SimRequest& request) const {
  const DType dt = request.dtype;
  const PowerMode& pm = request.power_mode;
  const double scale = request.latency_scale;

  trace::ExecutionTimeline timeline;

  // Host-side setup (tokenization, buffer allocation) at idle-ish power.
  const double overhead = roofline_.run_overhead_s() * scale;
  timeline.emit(trace::Phase::kSetup, overhead, request.batch, 0.0,
                power_.idle_w() + 4.0);

  // Prefill phase: compute-saturated.
  const double prefill =
      roofline_.prefill_s(m, dt, request.batch, request.in_tokens, pm) * scale;
  timeline.emit(trace::Phase::kPrefill, prefill, request.batch,
                static_cast<double>(request.in_tokens),
                power_.prefill_power(m, dt, pm).total_w());

  // Decode phase: one event per output token; power drifts as the KV share
  // of the step grows with context.
  for (std::size_t t = 0; t < request.out_tokens; ++t) {
    const double ctx = static_cast<double>(request.in_tokens + t);
    StepBreakdown step =
        roofline_.decode_step(m, dt, request.batch, ctx, pm, request.kv_cache_int8);
    const double watts = power_.decode_power(m, dt, step, pm).total_w();
    const double duration = step.total_s() * scale;
    step.weight_s *= scale;
    step.kv_s *= scale;
    step.compute_s *= scale;
    step.launch_s *= scale;
    step.quant_extra_s *= scale;
    step.cpu_stretch_s *= scale;
    timeline.emit(trace::Phase::kDecode, duration, request.batch, ctx, watts, step);
  }
  return timeline;
}

SimResult InferenceSim::run(const SimRequest& request) const {
  ORINSIM_CHECK(request.batch > 0 && request.in_tokens > 0 && request.out_tokens > 0,
                "SimRequest: batch/in/out must be positive");
  ORINSIM_CHECK(request.runs > 0, "SimRequest: need at least one measured run");
  const ModelSpec& m = model_by_key(request.model_key);

  SimResult result;
  result.memory = memory_.workload_memory(m, request.dtype, request.batch,
                                          request.in_tokens, request.out_tokens,
                                          request.kv_cache_int8);
  result.model_load_oom = memory_.model_oom(m, request.dtype);
  result.oom = result.model_load_oom || memory_.workload_oom(result.memory);
  if (result.oom) return result;

  // One noise-free run as an event stream; everything below derives from it.
  result.timeline = build_timeline(m, request);
  const telemetry::PowerSignal signal = result.timeline.power_signal();
  result.prefill_s = result.timeline.phase_time_s(trace::Phase::kPrefill);
  result.mean_decode_step = result.timeline.mean_breakdown(trace::Phase::kDecode);
  // Time to first token: setup + prefill + the first decode step.
  {
    const auto& events = result.timeline.events();
    result.ttft_s = events[0].duration_s + events[1].duration_s + events[2].duration_s;
  }

  Rng rng(request.seed);
  const telemetry::PowerSampler sampler(2.0, request.noise_sigma);
  telemetry::RunAggregator agg(/*warmup_runs=*/1);

  const std::size_t total_runs = request.runs + 1;  // + warm-up
  const double total_tokens =
      static_cast<double>(request.batch) *
      static_cast<double>(request.in_tokens + request.out_tokens);

  for (std::size_t r = 0; r < total_runs; ++r) {
    // Run-to-run latency jitter (background load, thermal state). The warm-up
    // run is slower: model pages in from SSD and CUDA kernels JIT.
    double jitter = 1.0 + request.noise_sigma * rng.normal();
    if (r == 0) jitter *= 1.3;
    jitter = std::max(0.5, jitter);

    telemetry::PowerSignal run_signal = signal;
    for (auto& t : run_signal.t_s) t *= jitter;

    const telemetry::SampledTrace trace = sampler.sample(run_signal, rng);
    const telemetry::BatchPowerStats stats = telemetry::summarize(trace);

    telemetry::RunMetrics metrics;
    metrics.latency_s = run_signal.duration_s();
    metrics.throughput_tps = total_tokens / metrics.latency_s;
    metrics.median_power_w = stats.median_power_w;
    metrics.energy_j = stats.energy_j;
    if (total_tokens > 0.0) metrics.energy_per_token_j = stats.energy_j / total_tokens;
    agg.add(metrics);

    if (r == 1) result.trace = trace;  // first measured run
  }

  const telemetry::RunMetrics mean = agg.mean();
  result.latency_s = mean.latency_s;
  result.throughput_tps = mean.throughput_tps;
  result.median_power_w = mean.median_power_w;
  result.energy_j = mean.energy_j;
  return result;
}

}  // namespace orinsim::sim
