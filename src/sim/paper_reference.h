// Measured values transcribed from the paper, used for (a) calibrating the
// simulator's per-model efficiency constants and (b) paper-vs-simulated
// comparison columns in every bench binary and in EXPERIMENTS.md.
//
// Sources: Table 1 (weight memory), Tables 4/5 (batch sweep, WikiText2 /
// LongBench), Tables 6/7 (sequence-length sweep, LongBench / WikiText2),
// Table 3 (perplexity), and the quantitative claims of §3.3/§3.4 and the
// appendix (quantization latency ratios, power-mode deltas).
//
// NaN marks OOM / not-measured cells.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace orinsim::sim {

struct BatchSweepRow {
  std::size_t batch_size;
  // Per model (order: phi2, llama3, mistral, deepseek-qwen):
  double ram_gb[4];
  double latency_s[4];
  double throughput_tps[4];
};

struct SeqSweepRow {
  std::size_t seq_total;
  double ram_gb[4];
  double latency_s[4];
  double throughput_tps[4];
};

// Order of the model columns in all reference tables.
const std::vector<std::string>& reference_model_keys();
std::size_t reference_model_index(const std::string& key);

// Table 4 (WikiText2) / Table 5 (LongBench): bs = 1..128, sl = 96 (32+64),
// MaxN, FP16 (DeepQ INT8). Latencies are seconds (the tables' "ms" header is
// a typo; the text quotes the same numbers in seconds).
const std::vector<BatchSweepRow>& table4_batch_wikitext2();
const std::vector<BatchSweepRow>& table5_batch_longbench();

// Table 6 (LongBench) / Table 7 (WikiText2): bs = 32, sl in {128,256,512,1024}.
const std::vector<SeqSweepRow>& table6_seq_longbench();
const std::vector<SeqSweepRow>& table7_seq_wikitext2();

// Table 1: peak weight memory (GB) per precision, FP32/FP16/INT8/INT4.
struct WeightMemoryRow {
  std::string model_key;
  double gb[4];  // F32, F16, I8, I4
};
const std::vector<WeightMemoryRow>& table1_weight_memory();

// Table 3: perplexity per precision (FP32, FP16, INT8, INT4), NaN = OOM.
struct PerplexityRow {
  std::string model_key;
  double wikitext2[4];
  double longbench[4];
};
const std::vector<PerplexityRow>& table3_perplexity();

// Quantization end-to-end latency ratios at bs=32, sl=96 relative to FP16
// (from §3.3 and appendix A.3 energy/power relations). NaN = OOM at FP16
// (DeepSeek ratios are relative to INT8 instead; see comment in .cpp).
struct QuantLatencyRatio {
  std::string model_key;
  double int8_vs_fp16;
  double int4_vs_fp16;
};
const std::vector<QuantLatencyRatio>& quant_latency_ratios();

// §3.4 power-mode claims for Llama (relative to MaxN): instantaneous power
// delta and latency delta. Used as shape targets, not calibration anchors.
struct PowerModeClaim {
  std::string mode;
  double power_delta;    // e.g. -0.28 => 28% lower median power
  double latency_delta;  // e.g. +0.26 => 26% higher latency
};
const std::vector<PowerModeClaim>& fig5_power_mode_claims();

}  // namespace orinsim::sim
