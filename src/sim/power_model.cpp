#include "sim/power_model.h"

#include <algorithm>
#include <cmath>

namespace orinsim::sim {

double PowerModel::gpu_component(double compute_share, double mem_share, double quant_util,
                                 const PowerMode& pm) const {
  const double freq_ratio = pm.gpu_freq_mhz / device_.gpu_max_freq_mhz;
  const double freq_scale = std::pow(freq_ratio, params_.gpu_freq_exponent);
  const double exec_activity = std::pow(quant_util, params_.activity_power_exponent);
  const double activity =
      compute_share * exec_activity + mem_share * params_.stall_activity;
  return params_.gpu_dyn_w * freq_scale * activity;
}

double PowerModel::cpu_component(const ModelSpec& m, const PowerMode& pm,
                                 double util) const {
  const double freq_ratio = pm.cpu_freq_ghz / device_.cpu_max_freq_ghz;
  const double freq_scale = std::pow(freq_ratio, params_.cpu_freq_exponent);
  // The runtime's host threads occupy a handful of cores; taking cores
  // offline below that point is what would reduce power/performance (the
  // paper sees negligible impact at 8 and 4 cores).
  constexpr double kBusyCores = 4.0;
  const double core_scale =
      std::min(1.0, static_cast<double>(pm.cpu_cores_online) / kBusyCores);
  (void)m;
  return params_.cpu_dyn_w * freq_scale * util * core_scale;
}

PowerEstimate PowerModel::decode_power(const ModelSpec& m, DType dt,
                                       const StepBreakdown& step,
                                       const PowerMode& pm) const {
  PowerEstimate p;
  const double total = step.total_s();
  if (total <= 0.0) return p;

  const double mem_share = step.memory_share();
  const double compute_share = step.compute_share();
  p.gpu_w = gpu_component(compute_share, mem_share, m.gpu_activity(dt), pm);

  // The host is busy per decode step (Python forward pass, kernel launches);
  // when steps stretch (e.g. the memory-starved PM-H) the same host work
  // spreads over more wall time and CPU power drops with it.
  const double launch_share = step.launch_s / total;
  const double util = std::clamp(45.0 * launch_share, 0.10, 0.85);
  p.cpu_w = cpu_component(m, pm, util);

  // Achieved DRAM bandwidth over this step vs peak at the mode's frequency.
  const double bytes_per_step =
      m.weight_gb(dt) * 1e9 +
      step.kv_s / std::max(step.weight_s, 1e-12) * m.weight_gb(dt) * 1e9;
  const double peak_bytes = device_.peak_bw_gbps(pm.mem_freq_mhz) * 1e9 * total;
  const double bw_util = std::clamp(bytes_per_step / std::max(peak_bytes, 1e-9), 0.0, 1.0);
  const double mem_freq_ratio = pm.mem_freq_mhz / device_.mem_max_freq_mhz;
  p.mem_w = params_.mem_dyn_w * mem_freq_ratio * bw_util;

  p.idle_w = params_.idle_w;

  const double cap = params_.board_cap_w;
  const double raw = p.total_w();
  if (raw > cap) {
    const double scale = cap / raw;
    p.gpu_w *= scale;
    p.cpu_w *= scale;
    p.mem_w *= scale;
    p.idle_w *= scale;
  }
  return p;
}

PowerEstimate PowerModel::prefill_power(const ModelSpec& m, DType dt,
                                        const PowerMode& pm) const {
  PowerEstimate p;
  // Prefill saturates the GPU with GEMMs: high execute activity, modest
  // memory activity, host mostly idle feeding the queue.
  p.gpu_w = gpu_component(0.9, 0.1, m.gpu_activity(dt), pm);
  p.cpu_w = cpu_component(m, pm, 0.35);
  const double mem_freq_ratio = pm.mem_freq_mhz / device_.mem_max_freq_mhz;
  p.mem_w = params_.mem_dyn_w * mem_freq_ratio * 0.5;
  p.idle_w = params_.idle_w;

  const double cap = params_.board_cap_w;
  const double raw = p.total_w();
  if (raw > cap) {
    const double scale = cap / raw;
    p.gpu_w *= scale;
    p.cpu_w *= scale;
    p.mem_w *= scale;
    p.idle_w *= scale;
  }
  return p;
}

}  // namespace orinsim::sim
