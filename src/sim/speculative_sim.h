// Device-level speculative-decoding speedup on the simulated Orin AGX.
//
// Decode on this device is weight-bound (§3.2): a verification pass over
// K+1 positions streams the same weights as generating one token, so its
// marginal cost is mostly compute. With per-token acceptance rate `a`, a
// round retires E = (1 - a^(K+1)) / (1 - a) tokens for one target pass plus
// K draft steps:
//
//     speedup = E * t_target(1) / (t_target(K+1 positions) + K * t_draft(1))
//
// The acceptance rate is an input here; the functional engine measures it
// for real model pairs (model::speculative_generate), and the extension
// bench feeds one into the other.
#pragma once

#include <cstddef>

#include "sim/model_catalog.h"
#include "sim/power_mode.h"
#include "trace/timeline.h"

namespace orinsim::sim {

struct SpeculativeEstimate {
  double tokens_per_round = 0.0;
  double round_cost_s = 0.0;
  double baseline_step_s = 0.0;  // target's plain per-token decode cost
  double speedup = 0.0;          // > 1 means speculative decoding wins
  double draft_share = 0.0;      // fraction of the round spent drafting

  // One speculative round as events: K kDraft steps then one kVerify pass.
  // round_cost_s and draft_share are derived from this stream.
  trace::ExecutionTimeline round_timeline;
};

// Expected emitted tokens per round for greedy speculative decoding with
// independent per-token acceptance probability `a` and K draft tokens.
double expected_tokens_per_round(double acceptance, std::size_t draft_tokens);

// Speedup estimate for a (target, draft) pair at context position `ctx`.
// Both models run at the given precisions on the same device.
SpeculativeEstimate estimate_speculative_speedup(
    const ModelSpec& target, DType target_dtype, const ModelSpec& draft,
    DType draft_dtype, std::size_t draft_tokens, double acceptance, double ctx = 256.0,
    const PowerMode& pm = power_mode_maxn());

}  // namespace orinsim::sim
