// End-to-end simulated inference runs on the Orin AGX: ties together the
// memory model (OOM detection), the roofline timing model, the power model,
// and the jtop-style telemetry pipeline, following the paper's measurement
// protocol (1 warm-up + N runs, averaged).
#pragma once

#include <cstdint>
#include <string>

#include "sim/memory_model.h"
#include "sim/model_catalog.h"
#include "sim/power_mode.h"
#include "sim/power_model.h"
#include "sim/roofline.h"
#include "telemetry/power_sampler.h"
#include "telemetry/run_report.h"
#include "trace/timeline.h"

namespace orinsim::sim {

struct SimRequest {
  std::string model_key = "llama3";
  DType dtype = DType::kF16;
  std::size_t batch = 32;
  std::size_t in_tokens = 32;
  std::size_t out_tokens = 64;
  PowerMode power_mode = power_mode_maxn();
  std::size_t runs = 5;    // measured runs after one warm-up
  // Extension axis: quantize the KV cache to INT8 (halves KV memory and
  // traffic at a small dequant overhead).
  bool kv_cache_int8 = false;
  // Multiplier on run latency capturing dataset-level variation (the paper
  // sees ~4-10% between WikiText2 and LongBench for identical configs).
  double latency_scale = 1.0;
  // 0 disables run-to-run noise entirely (used by calibration tests).
  double noise_sigma = 0.015;
  std::uint64_t seed = 7;
};

struct SimResult {
  bool oom = false;             // workload does not fit in shared RAM
  bool model_load_oom = false;  // even the weights do not fit
  MemoryBreakdown memory;

  // Aggregates across measured runs (paper protocol).
  double latency_s = 0.0;        // end-to-end time to last token for the batch
  double ttft_s = 0.0;           // time to first token (setup + prefill + 1 step)
  double throughput_tps = 0.0;   // TP = batch * (in + out) / latency
  double median_power_w = 0.0;
  double energy_j = 0.0;         // per batch, trapezoid of 2s samples
  double prefill_s = 0.0;
  StepBreakdown mean_decode_step;  // cost decomposition at mean context

  // One measured run's sampled power trace (for plots / energy tests).
  telemetry::SampledTrace trace;

  // The noise-free run's full event stream (setup, prefill, one event per
  // decode step). Latency/prefill/mean-step/power-signal above are derived
  // from it; exporters (trace/export.h) serialize it.
  trace::ExecutionTimeline timeline;
};

class InferenceSim {
 public:
  explicit InferenceSim(const DeviceSpec& device = orin_agx_64gb())
      : device_(device), roofline_(device), memory_(device), power_(device) {}

  SimResult run(const SimRequest& request) const;

  const RooflineEngine& roofline() const noexcept { return roofline_; }
  const MemoryModel& memory_model() const noexcept { return memory_; }
  const PowerModel& power_model() const noexcept { return power_; }

 private:
  // Emits one noise-free batch run (setup, prefill, per-token decode) into a
  // timeline; every downstream metric is derived from the events.
  trace::ExecutionTimeline build_timeline(const ModelSpec& m,
                                          const SimRequest& request) const;

  DeviceSpec device_;
  RooflineEngine roofline_;
  MemoryModel memory_;
  PowerModel power_;
};

}  // namespace orinsim::sim
