// Shared-RAM memory model for the Orin AGX (64GB CPU+GPU unified memory).
//
// Total footprint of a workload = model weights (Table 1 anchors) +
// incremental components the paper's "incremental peak memory" metric
// captures:
//
//   kv_gb        : KV cache, fp16, batch * seq_total * kv_bytes/token
//   attn_quad_gb : materialized attention score/probability tensors,
//                  batch * heads * seq^2 * fp32 * 2 * attn_quad_layers.
//                  Phi-2's eager attention keeps these for many layers,
//                  which is what drives its OOM at bs=32, sl>=512 with only
//                  a 5.6 GB model (Table 6); SDPA-based models keep ~1.
//   logits_gb    : fp32 logits (+ one working copy) for the batch
//   act_gb       : per-sequence activation workspace (incl. LLM.int8()'s
//                  fp16 activation copies for INT8 models)
//   fixed_gb     : allocator / CUDA workspace growth at workload start
//
// OOM when weights + incremental exceed usable RAM (64GB minus the OS/
// desktop/CUDA baseline).
#pragma once

#include <cstddef>

#include "sim/device.h"
#include "sim/model_catalog.h"
#include "tensor/dtype.h"

namespace orinsim::sim {

struct MemoryBreakdown {
  double weights_gb = 0.0;
  double kv_gb = 0.0;
  double attn_quad_gb = 0.0;
  double logits_gb = 0.0;
  double act_gb = 0.0;
  double fixed_gb = 0.0;

  double incremental_gb() const {
    return kv_gb + attn_quad_gb + logits_gb + act_gb + fixed_gb;
  }
  double total_gb() const { return weights_gb + incremental_gb(); }
};

class MemoryModel {
 public:
  explicit MemoryModel(const DeviceSpec& device = orin_agx_64gb()) : device_(device) {}

  MemoryBreakdown workload_memory(const ModelSpec& m, DType dt, std::size_t batch,
                                  std::size_t in_tokens, std::size_t out_tokens,
                                  bool kv_cache_int8 = false) const;

  // True if just loading the model weights exceeds usable RAM.
  bool model_oom(const ModelSpec& m, DType dt) const;

  // True if the workload (weights + incremental) exceeds usable RAM.
  bool workload_oom(const MemoryBreakdown& mem) const;

  double usable_gb() const { return device_.usable_ram_gb(); }

 private:
  DeviceSpec device_;
};

}  // namespace orinsim::sim
