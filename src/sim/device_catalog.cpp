#include "sim/device_catalog.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace orinsim::sim {

namespace {

std::vector<DeviceEntry> build_catalog() {
  std::vector<DeviceEntry> catalog;

  {
    DeviceEntry e;
    e.key = "orin-agx-64";
    e.spec = orin_agx_64gb();
    e.price_usd = 2200.0;  // per the paper's introduction
    catalog.push_back(e);
  }
  {
    // Orin AGX 32GB: same Ampere GPU family with 1792 CUDA cores, 204.8 GB/s,
    // half the RAM. The device Seymour et al. evaluate.
    DeviceEntry e;
    e.key = "orin-agx-32";
    e.spec = orin_agx_64gb();
    e.spec.name = "NVIDIA Jetson Orin AGX 32GB";
    e.spec.gpu_cuda_cores = 1792;
    e.spec.gpu_fp16_tflops_max = 21.2 * 1792.0 / 2048.0;
    e.spec.gpu_fp32_tflops_max = 5.33 * 1792.0 / 2048.0;
    e.spec.total_ram_gb = 32.0;
    e.spec.os_reserved_gb = 3.2;
    e.price_usd = 1600.0;
    catalog.push_back(e);
  }
  {
    // Xavier AGX 32GB (Volta, 512 CUDA cores + 64 tensor cores, LPDDR4x
    // 136.5 GB/s): the authors' prior-poster device.
    DeviceEntry e;
    e.key = "xavier-agx-32";
    e.spec.name = "NVIDIA Jetson Xavier AGX 32GB";
    e.spec.gpu_cuda_cores = 512;
    e.spec.gpu_max_freq_mhz = 1377.0;
    e.spec.gpu_fp16_tflops_max = 11.0;  // Volta tensor cores, dense FP16
    e.spec.gpu_fp32_tflops_max = 1.41;
    e.spec.cpu_cores = 8;  // Carmel
    e.spec.cpu_max_freq_ghz = 2.26;
    e.spec.mem_max_freq_mhz = 2133.0;
    e.spec.mem_bus_bytes = 32.0;  // 256-bit LPDDR4x -> 136.5 GB/s
    e.spec.total_ram_gb = 32.0;
    e.spec.os_reserved_gb = 3.0;
    e.price_usd = 999.0;
    catalog.push_back(e);
  }
  {
    // Orin NX 16GB: 1024 CUDA cores, 128-bit LPDDR5 (102.4 GB/s).
    DeviceEntry e;
    e.key = "orin-nx-16";
    e.spec.name = "NVIDIA Jetson Orin NX 16GB";
    e.spec.gpu_cuda_cores = 1024;
    e.spec.gpu_max_freq_mhz = 918.0;
    e.spec.gpu_fp16_tflops_max = 21.2 * (1024.0 / 2048.0) * (918.0 / 1301.0);
    e.spec.gpu_fp32_tflops_max = 5.33 * (1024.0 / 2048.0) * (918.0 / 1301.0);
    e.spec.cpu_cores = 8;
    e.spec.cpu_max_freq_ghz = 2.0;
    e.spec.mem_max_freq_mhz = 3200.0;
    e.spec.mem_bus_bytes = 16.0;  // 128-bit
    e.spec.total_ram_gb = 16.0;
    e.spec.os_reserved_gb = 2.5;
    e.price_usd = 699.0;
    catalog.push_back(e);
  }
  {
    // Orin Nano 8GB: 1024 CUDA cores at a lower clock, 68 GB/s.
    DeviceEntry e;
    e.key = "orin-nano-8";
    e.spec.name = "NVIDIA Jetson Orin Nano 8GB";
    e.spec.gpu_cuda_cores = 1024;
    e.spec.gpu_max_freq_mhz = 625.0;
    e.spec.gpu_fp16_tflops_max = 21.2 * (1024.0 / 2048.0) * (625.0 / 1301.0);
    e.spec.gpu_fp32_tflops_max = 5.33 * (1024.0 / 2048.0) * (625.0 / 1301.0);
    e.spec.cpu_cores = 6;
    e.spec.cpu_max_freq_ghz = 1.5;
    e.spec.mem_max_freq_mhz = 2133.0;
    e.spec.mem_bus_bytes = 16.0;  // 128-bit LPDDR5 -> 68.3 GB/s
    e.spec.total_ram_gb = 8.0;
    e.spec.os_reserved_gb = 2.0;
    e.price_usd = 499.0;
    catalog.push_back(e);
  }
  return catalog;
}

}  // namespace

const std::vector<DeviceEntry>& device_catalog() {
  static const std::vector<DeviceEntry> kCatalog = build_catalog();
  return kCatalog;
}

PowerMode max_power_mode_for(const DeviceSpec& spec) {
  PowerMode pm;
  pm.name = "MaxN";
  pm.gpu_freq_mhz = spec.gpu_max_freq_mhz;
  pm.cpu_freq_ghz = spec.cpu_max_freq_ghz;
  pm.cpu_cores_online = spec.cpu_cores;
  pm.mem_freq_mhz = spec.mem_max_freq_mhz;
  return pm;
}

PowerMode scaled_power_mode(const DeviceSpec& spec, const std::string& table2_name) {
  const PowerMode ref = power_mode_by_name(table2_name);
  const PowerMode maxn = power_mode_maxn();
  PowerMode pm;
  pm.name = ref.name;
  pm.gpu_freq_mhz = spec.gpu_max_freq_mhz * (ref.gpu_freq_mhz / maxn.gpu_freq_mhz);
  pm.cpu_freq_ghz = spec.cpu_max_freq_ghz * (ref.cpu_freq_ghz / maxn.cpu_freq_ghz);
  const double core_share =
      static_cast<double>(ref.cpu_cores_online) / static_cast<double>(maxn.cpu_cores_online);
  const int cores = static_cast<int>(
      std::lround(core_share * static_cast<double>(spec.cpu_cores)));
  pm.cpu_cores_online = std::clamp(cores, 1, spec.cpu_cores);
  pm.mem_freq_mhz = spec.mem_max_freq_mhz * (ref.mem_freq_mhz / maxn.mem_freq_mhz);
  return pm;
}

std::vector<PowerMode> device_gpu_frequency_ladder(const DeviceSpec& spec) {
  std::vector<PowerMode> ladder;
  for (const PowerMode& pm : gpu_frequency_ladder()) {
    ladder.push_back(scaled_power_mode(spec, pm.name));
  }
  return ladder;
}

const DeviceEntry& device_by_key(const std::string& key) {
  for (const auto& e : device_catalog()) {
    if (e.key == key) return e;
  }
  ORINSIM_CHECK(false, "unknown device key: " + key);
  return device_catalog().front();
}

}  // namespace orinsim::sim
