// DLA co-execution: the Orin AGX carries two NVDLA v2 cores alongside the
// GPU — the "accelerators like DLAs" the paper's conclusion points to. They
// are INT8-native, draw a few watts, and share the LPDDR5 interface with
// the GPU.
//
// The natural LLM use is heterogeneous serving: keep the big model on the
// GPU and pin a small INT8 model (a Phi-2-class assistant, or a speculative
// draft) to a DLA. This module estimates
//  - the small model's decode throughput on a DLA (memory-bound against its
//    DRAM share, compute-bound against its INT8 TOPS), and
//  - the big model's slowdown from sharing DRAM bandwidth,
// with the power cost of lighting the DLA up.
//
// DLA transformer support in the real stack is partial (no flash attention,
// limited ops); the `efficiency` factor is deliberately conservative.
#pragma once

#include "sim/model_catalog.h"
#include "sim/power_mode.h"

namespace orinsim::sim {

struct DlaSpec {
  int cores = 2;
  double int8_tops_per_core = 26.0;   // dense INT8 at max clock
  double efficiency = 0.30;           // achievable fraction on matvec decode
  double dram_share = 0.30;           // DRAM bandwidth a busy DLA can claim
  double gpu_bw_penalty = 0.10;       // GPU bandwidth lost to the contention
  double power_w_per_core = 5.0;      // active power per DLA core
};

struct DlaCoExecution {
  double dla_tps = 0.0;            // small model tokens/s on one DLA core
  double dla_step_s = 0.0;
  bool dla_memory_bound = false;
  double gpu_tps_alone = 0.0;      // big model throughput without contention
  double gpu_tps_shared = 0.0;     // with the DLA streaming weights
  double gpu_degradation = 0.0;    // 1 - shared/alone
  double added_power_w = 0.0;
};

// Small model must fit the DLA path at INT8. The big model runs its default
// workload (bs=32, sl=96) on the GPU.
DlaCoExecution estimate_dla_coexecution(const ModelSpec& big, DType big_dtype,
                                        const ModelSpec& small,
                                        const DlaSpec& dla = DlaSpec{},
                                        const PowerMode& pm = power_mode_maxn());

}  // namespace orinsim::sim
