#include "sim/paper_reference.h"

#include <cmath>
#include <limits>

#include "core/error.h"

namespace orinsim::sim {

namespace {
constexpr double kOOM = std::numeric_limits<double>::quiet_NaN();
}

const std::vector<std::string>& reference_model_keys() {
  static const std::vector<std::string> kKeys = {"phi2", "llama3", "mistral",
                                                 "deepseek-qwen"};
  return kKeys;
}

std::size_t reference_model_index(const std::string& key) {
  const auto& keys = reference_model_keys();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] == key) return i;
  }
  ORINSIM_CHECK(false, "unknown reference model key: " + key);
  return 0;
}

const std::vector<BatchSweepRow>& table4_batch_wikitext2() {
  // Table 4: WikiText2, MaxN, sl=96 (32 in + 64 out), FP16 (DeepQ INT8).
  static const std::vector<BatchSweepRow> kRows = {
      {1, {6.18, 16.38, 47.33, 34.82}, {3.73, 6.37, 18.51, 43.25}, {25.45, 15.08, 5.19, 2.22}},
      {2, {6.24, 16.42, 47.36, 35.24}, {3.95, 6.66, 18.30, 46.97}, {48.66, 28.82, 8.96, 4.09}},
      {4, {6.36, 16.45, 47.44, 35.72}, {3.95, 6.87, 18.74, 48.97}, {96.24, 55.91, 20.49, 7.84}},
      {8, {6.48, 16.53, 47.59, 36.76}, {3.95, 7.37, 19.54, 47.73}, {194.59, 104.27, 39.30, 16.09}},
      {16, {6.87, 16.72, 47.74, 38.25}, {4.09, 8.33, 21.29, 69.81}, {375.88, 184.39, 72.16, 22.00}},
      {32, {8.05, 17.12, 47.99, 40.87}, {5.19, 9.96, 39.12, 47.92}, {591.68, 308.47, 78.52, 64.11}},
      {64, {11.57, 17.91, 48.77, 43.23}, {7.59, 14.04, 48.84, 61.05}, {809.96, 437.47, 125.79, 100.65}},
      {128, {20.53, 19.26, 50.08, 44.35}, {12.85, 21.99, 66.53, 83.69}, {956.61, 558.87, 184.69, 146.83}},
  };
  return kRows;
}

const std::vector<BatchSweepRow>& table5_batch_longbench() {
  // Table 5: LongBench, same configuration as Table 4.
  static const std::vector<BatchSweepRow> kRows = {
      {1, {6.09, 16.37, 47.77, 34.74}, {3.62, 6.36, 18.53, 43.42}, {26.54, 15.08, 5.18, 2.21}},
      {2, {6.10, 16.46, 47.73, 35.11}, {3.64, 6.59, 18.30, 46.58}, {52.73, 29.13, 10.49, 4.12}},
      {4, {6.13, 16.46, 47.89, 35.72}, {3.63, 6.77, 18.63, 48.11}, {105.72, 56.69, 20.61, 7.98}},
      {8, {6.13, 16.53, 48.03, 36.94}, {3.65, 7.26, 19.43, 47.01}, {210.17, 105.84, 39.53, 16.34}},
      {16, {6.22, 16.73, 48.18, 37.97}, {3.85, 8.19, 21.14, 69.13}, {398.99, 187.59, 72.66, 22.22}},
      {32, {7.42, 17.14, 48.40, 39.76}, {4.93, 9.76, 39.05, 46.52}, {623.20, 314.60, 78.67, 66.04}},
      {64, {10.94, 17.91, 49.10, 41.90}, {7.12, 13.65, 48.44, 58.86}, {863.01, 450.12, 126.83, 104.39}},
      {128, {19.91, 19.27, 50.55, 43.06}, {11.97, 21.21, 65.83, 80.61}, {1026.76, 579.40, 186.67, 152.43}},
  };
  return kRows;
}

const std::vector<SeqSweepRow>& table6_seq_longbench() {
  // Table 6: LongBench, bs=32, MaxN. Phi-2 OOM for sl >= 512.
  static const std::vector<SeqSweepRow> kRows = {
      {128, {6.97, 17.24, 48.24, 34.56}, {7.74, 15.09, 57.51, 97.72}, {529.04, 271.50, 71.22, 41.91}},
      {256, {20.70, 18.26, 49.00, 39.58}, {21.26, 37.37, 123.64, 257.02}, {385.32, 219.21, 66.26, 31.88}},
      {512, {kOOM, 21.17, 50.86, 42.17}, {kOOM, 101.02, 281.30, 679.31}, {kOOM, 162.18, 58.24, 24.12}},
      {1024, {kOOM, 29.37, 54.48, 46.91}, {kOOM, 305.36, 694.74, 1646.36}, {kOOM, 107.31, 47.17, 19.90}},
  };
  return kRows;
}

const std::vector<SeqSweepRow>& table7_seq_wikitext2() {
  // Table 7: WikiText2, bs=32, MaxN.
  static const std::vector<SeqSweepRow> kRows = {
      {128, {9.19, 17.20, 48.15, 40.49}, {7.74, 14.99, 57.35, 93.04}, {529.31, 273.18, 71.42, 44.03}},
      {256, {19.98, 18.77, 49.00, 41.38}, {21.03, 37.23, 123.31, 249.24}, {389.48, 220.02, 66.43, 32.87}},
      {512, {kOOM, 20.99, 50.81, 43.28}, {kOOM, 100.69, 280.48, 667.08}, {kOOM, 162.71, 58.41, 24.56}},
      {1024, {kOOM, 29.13, 54.66, 46.10}, {kOOM, 304.33, 693.13, 1681.75}, {kOOM, 107.67, 47.28, 19.48}},
  };
  return kRows;
}

const std::vector<WeightMemoryRow>& table1_weight_memory() {
  static const std::vector<WeightMemoryRow> kRows = {
      {"phi2", {11.2, 5.6, 3.0, 1.8}},
      {"llama3", {32.2, 16.1, 9.1, 5.6}},
      {"mistral", {94.2, 47.1, 24.9, 13.8}},
      {"deepseek-qwen", {124.0, 62.0, 34.3, 18.7}},
  };
  return kRows;
}

const std::vector<PerplexityRow>& table3_perplexity() {
  static const std::vector<PerplexityRow> kRows = {
      {"phi2", {9.12, 9.12, 9.34, 9.69}, {7.35, 7.35, 7.47, 7.65}},
      {"llama3", {5.91, 5.91, 6.00, 6.30}, {5.77, 5.77, 5.80, 5.99}},
      {"mistral", {kOOM, 4.99, 5.00, 5.08}, {kOOM, 4.95, 4.97, 5.11}},
      {"deepseek-qwen", {kOOM, kOOM, 6.36, 6.48}, {kOOM, kOOM, 6.42, 6.53}},
  };
  return kRows;
}

const std::vector<QuantLatencyRatio>& quant_latency_ratios() {
  // §3.3: "INT8 ... is slower by 62% than FP16" for Phi-2 and Llama;
  // "For the larger Mistral-Base-24B, INT8 is within 2% of FP16 latency".
  // INT4 ratios are derived from the appendix A.3 energy relations assuming
  // comparable power draw between FP16 and INT4 (the paper reports INT4 at
  // 100% GPU utilization, FP16 similar):
  //   Llama: FP16 energy ~ 78% below INT4 median  => INT4 ~ 4.5x FP16 time.
  //   Phi-2: INT8 energy 24% below FP16 and 55% below INT4
  //          => INT4 ~ 1.69x FP16 time.
  //   Mistral: INT4 energy ~ +57% vs FP16        => INT4 ~ 1.57x FP16 time.
  // DeepSeek-Qwen cannot run FP16; its ratios are expressed vs INT8
  // (int8_vs_fp16 slot holds 1.0 by convention, int4 slot holds the INT4/INT8
  // ratio ~3.5x from the A.3 relation E4 = 4.5*E8 with P4/P8 = 1/0.77).
  static const std::vector<QuantLatencyRatio> kRows = {
      {"phi2", 1.62, 1.69},
      {"llama3", 1.62, 4.50},
      {"mistral", 1.02, 1.57},
      {"deepseek-qwen", 1.00, 3.47},
  };
  return kRows;
}

const std::vector<PowerModeClaim>& fig5_power_mode_claims() {
  // §3.4, Llama-3.1-8B, bs=32, sl=96.
  static const std::vector<PowerModeClaim> kClaims = {
      {"A", -0.28, +0.26},  // lower GPU freq: less power, modest slowdown
      {"B", -0.51, +0.60},  // latency delta not quoted; energy rises vs MaxN
      {"C", -0.30, +0.25},
      {"D", -0.30, +0.25},  // paper groups C/D: "reduces power by 30%, latency +25%"
      {"E", 0.00, +0.01},   // negligible
      {"F", 0.00, +0.02},   // negligible
      {"G", -0.20, +0.30},  // not quoted; intermediate between MaxN and H
      {"H", -0.52, +3.70},
  };
  return kClaims;
}

}  // namespace orinsim::sim
