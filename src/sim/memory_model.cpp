#include "sim/memory_model.h"

namespace orinsim::sim {

MemoryBreakdown MemoryModel::workload_memory(const ModelSpec& m, DType dt,
                                             std::size_t batch, std::size_t in_tokens,
                                             std::size_t out_tokens,
                                             bool kv_cache_int8) const {
  MemoryBreakdown mem;
  const double bs = static_cast<double>(batch);
  const double seq = static_cast<double>(in_tokens + out_tokens);

  mem.weights_gb = m.weight_gb(dt);
  mem.kv_gb = bs * seq * m.kv_bytes_per_token(kv_cache_int8) / 1e9;
  mem.attn_quad_gb = bs * static_cast<double>(m.n_heads) * seq * seq * 4.0 /*fp32*/ *
                     2.0 /*scores + probs*/ * m.attn_quad_layers / 1e9;
  mem.logits_gb = bs * static_cast<double>(m.vocab) * 4.0 * 2.0 / 1e9;
  mem.act_gb = bs * m.act_mb_per_seq / 1e3;
  mem.fixed_gb = m.fixed_overhead_gb;
  return mem;
}

bool MemoryModel::model_oom(const ModelSpec& m, DType dt) const {
  return m.weight_gb(dt) > usable_gb();
}

bool MemoryModel::workload_oom(const MemoryBreakdown& mem) const {
  return mem.total_gb() > usable_gb();
}

}  // namespace orinsim::sim
