// Thermal model: junction temperature dynamics and DVFS throttling under
// sustained LLM inference load.
//
// The paper measures batches lasting up to ~28 minutes (DeepSeek at sl=1024,
// Table 6) — long enough for the Orin's thermal state, not just its DVFS
// setting, to shape latency. This extension models the junction with a
// first-order RC network:
//
//     dT/dt = (P * R_th - (T - T_ambient)) / tau
//
// and a proportional throttle that scales the GPU clock down linearly once
// the junction passes `throttle_start_c`, reaching `throttle_min_ratio` at
// `hard_limit_c` (how nvpmodel/tegra thermal management behaves to first
// order). Throttling feeds back: a slower GPU draws less power, which cools
// the junction, which releases the throttle — the simulation converges to
// the sustainable operating point.
//
// Two cooling presets bracket real deployments: the devkit's fan
// (R_th ~ 1.0 C/W) and a fanless enclosure (R_th ~ 1.6 C/W), where MaxN LLM
// load *does* throttle.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/inference_sim.h"

namespace orinsim::sim {

struct ThermalParams {
  double ambient_c = 25.0;
  double r_th_c_per_w = 1.0;       // junction-to-ambient thermal resistance
  double tau_s = 60.0;             // thermal time constant
  double throttle_start_c = 85.0;  // soft-throttle onset
  double hard_limit_c = 100.0;     // max junction temperature
  double throttle_min_ratio = 0.4; // GPU clock floor under full throttle

  static ThermalParams devkit_fan() { return ThermalParams{}; }
  static ThermalParams fanless_enclosure() {
    ThermalParams p;
    p.r_th_c_per_w = 2.0;  // passive heatsink: ~40W sustained at 80C ambient delta
    p.tau_s = 120.0;       // more thermal mass, slower to heat and cool
    return p;
  }
};

class ThermalModel {
 public:
  explicit ThermalModel(ThermalParams params = {}) : params_(params) {}

  const ThermalParams& params() const noexcept { return params_; }

  // One Euler step of the RC network.
  double step_temperature(double temp_c, double power_w, double dt_s) const;

  // Steady-state temperature at constant power.
  double equilibrium_c(double power_w) const;

  // GPU clock multiplier in [throttle_min_ratio, 1].
  double gpu_throttle(double temp_c) const;

 private:
  ThermalParams params_;
};

struct ThermalSample {
  double t_s = 0.0;
  double temp_c = 0.0;
  double power_w = 0.0;
  double gpu_ratio = 1.0;
};

struct ThermalRunResult {
  double latency_s = 0.0;        // thermally-throttled end-to-end latency
  double ideal_latency_s = 0.0;  // what the non-thermal simulator predicts
  double peak_temp_c = 0.0;
  double final_temp_c = 0.0;
  // Fraction of powered (prefill + decode) time spent throttled; in [0, 1].
  double throttled_fraction = 0.0;
  double energy_j = 0.0;
  std::vector<ThermalSample> trace;  // sampled every ~2s of simulated time
};

// Replays one batch run (prefill + decode) through the thermal feedback
// loop, starting from ambient (cold start) or a given initial temperature.
ThermalRunResult simulate_with_thermals(const SimRequest& request,
                                        const ThermalParams& params,
                                        double initial_temp_c = -1.0 /* ambient */);

}  // namespace orinsim::sim
