// Catalog of Jetson-class edge accelerators beyond the paper's Orin AGX
// 64GB. This extends the study the way its related-work section frames the
// landscape:
//  - Orin AGX 32GB: the device of Seymour et al. (arXiv 2412.15352), which
//    could not run models larger than ~14B;
//  - Xavier AGX 32GB: the authors' own prior poster (HiPCW 2024);
//  - Orin NX 16GB / Orin Nano 8GB: the smaller Jetson tier, for the
//    feasibility frontier.
//
// Cross-device predictions reuse the per-model efficiency constants
// calibrated on the Orin AGX 64GB. That is an explicit modeling assumption
// (kernel efficiency travels with the model, peaks travel with the device);
// it is exact for the memory-fit verdicts, which depend only on capacity,
// and first-order for latency/energy.
#pragma once

#include <string>
#include <vector>

#include "sim/device.h"
#include "sim/power_mode.h"

namespace orinsim::sim {

struct DeviceEntry {
  std::string key;  // "orin-agx-64", "orin-agx-32", "xavier-agx-32", ...
  DeviceSpec spec;
  double price_usd = 0.0;  // launch-era developer-kit pricing, for $/tok
};

const std::vector<DeviceEntry>& device_catalog();
const DeviceEntry& device_by_key(const std::string& key);

// The device's own MaxN-equivalent mode (its maximum clocks and all cores).
PowerMode max_power_mode_for(const DeviceSpec& spec);

// A Table 2 power mode translated to `spec`: every frequency axis keeps its
// ratio to the Orin AGX MaxN value, applied to the device's own maxima, and
// online cores scale proportionally (clamped to [1, cpu_cores]). Identity
// for the paper's Orin AGX 64GB, so Table 2 semantics are preserved there
// while smaller Jetsons get a proportionally scaled ladder instead of
// frequencies they cannot clock.
PowerMode scaled_power_mode(const DeviceSpec& spec, const std::string& table2_name);

// The governor's GPU-frequency descent (Table 2 MaxN -> A -> B) scaled to
// `spec` via scaled_power_mode: the default ladder a fleet device's power
// governor walks.
std::vector<PowerMode> device_gpu_frequency_ladder(const DeviceSpec& spec);

}  // namespace orinsim::sim
