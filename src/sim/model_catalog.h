// Catalog of the four models the paper evaluates (Table 1), with their true
// architecture hyper-parameters and measured on-device weight memory, plus
// the calibration constants the timing/memory/power models consume.
//
// Calibration slots are populated by sim::calibrate_catalog() from the
// paper's appendix anchors (see calibration.cpp for the exact procedure and
// which measurements are fitted vs predicted).
#pragma once

#include <string>
#include <vector>

#include "tensor/dtype.h"

namespace orinsim::sim {

struct ModelSpec {
  // Identity
  std::string key;      // "phi2", "llama3", "mistral", "deepseek-qwen"
  std::string display;  // paper's label, e.g. "MS-Phi2"
  std::string hf_name;  // HuggingFace model id

  // Architecture (true values for the released checkpoints)
  double params_b = 0.0;  // total parameters, billions
  std::size_t n_layers = 0;
  std::size_t d_model = 0;
  std::size_t n_heads = 0;
  std::size_t n_kv_heads = 0;
  std::size_t d_ff = 0;
  std::size_t vocab = 0;

  // Peak weight memory on device, GB (paper Table 1; red estimates included).
  double weight_gb_f32 = 0.0;
  double weight_gb_f16 = 0.0;
  double weight_gb_i8 = 0.0;
  double weight_gb_i4 = 0.0;

  // The precision the paper runs this model at in the performance studies
  // (FP16 for all but DeepSeek-Qwen, which only fits at INT8).
  DType default_dtype = DType::kF16;

  // ---- Memory-model calibration ----
  // Attention-score materialization expressed in "live layers": HF's eager
  // attention path (Phi-2) keeps fp32 score tensors for every layer during
  // prefill, SDPA-based models only a couple. Bytes modeled as
  //   batch * n_heads * seq^2 * 4 * attn_quad_layers * 2 (scores + probs).
  double attn_quad_layers = 1.0;
  // Residual activation/workspace per sequence in the batch (MB).
  double act_mb_per_seq = 8.0;
  // Fixed allocator/CUDA-workspace growth when a workload starts (GB).
  double fixed_overhead_gb = 0.3;

  // ---- Timing calibration (filled by calibrate_catalog) ----
  double bw_efficiency = 0.7;       // fraction of peak DRAM BW in decode
  double compute_efficiency = 0.5;  // fraction of peak FP16 TFLOPS
  double launch_ms = 3.0;           // per-decode-step host/launch cost at MaxN
  double attn_kv_overhead = 10.0;   // eager-attention KV traffic multiplier
  // End-to-end slowdown multipliers applied to (weight + compute) time,
  // relative to FP16 at the same byte counts. FP32 is 1.0 (its cost shows up
  // through doubled weight traffic); INT8/INT4 carry the BitsAndBytes
  // dequantization overhead the paper measures (Fig 3: +62% for small
  // models, ~+2% for Mistral).
  double quant_slowdown_i8 = 2.0;
  double quant_slowdown_i4 = 3.0;

  // GPU utilization factor while computing under each quantization; the
  // paper observes INT8 at ~60% GPU and INT4 at 100%, which drives the
  // power gap between them (Fig 4).
  double gpu_activity_i8 = 0.60;
  double gpu_activity_i4 = 1.00;

  double weight_gb(DType dt) const;
  // KV-cache bytes per token per sequence. Default is the fp16 cache HF
  // uses; int8_cache halves it (one byte per element plus per-vector
  // scales), the extension study's KV-quantization axis.
  double kv_bytes_per_token(bool int8_cache = false) const;
  // FLOPs per token in a forward pass (~2 * params).
  double flops_per_token() const;
  // Approximate weight memory computed from the architecture (used by tests
  // to validate the Table 1 numbers, not by the simulator itself).
  double derived_weight_gb(DType dt) const;

  double quant_slowdown(DType dt) const;
  double gpu_activity(DType dt) const;
};

// The four-model catalog with calibration already applied.
const std::vector<ModelSpec>& model_catalog();

const ModelSpec& model_by_key(const std::string& key);

}  // namespace orinsim::sim
