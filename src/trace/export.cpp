#include "trace/export.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/error.h"

namespace orinsim::trace {

namespace {

// Shortest round-trip-safe double rendering; JSON has no Inf/NaN, but trace
// values are finite by construction (checked on emission).
std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void event_fields(std::ostringstream& out, const StepEvent& e) {
  out << "\"phase\":\"" << phase_name(e.phase) << "\",\"t_start_s\":" << num(e.t_start_s)
      << ",\"duration_s\":" << num(e.duration_s) << ",\"batch\":" << e.batch
      << ",\"ctx\":" << num(e.ctx);
  // Conditional so traces without chunked prefill (simulator, seed traces)
  // serialize byte-identically to before the field existed.
  if (e.chunk != 0) out << ",\"chunk\":" << e.chunk;
  // Same contract for KV pool occupancy: only the paged serving engine sets
  // it, so every other trace keeps its exact legacy serialization.
  if (e.has_kv_occupancy()) {
    out << ",\"kv_blocks_used\":" << e.kv_blocks_used
        << ",\"kv_blocks_total\":" << e.kv_blocks_total;
  }
  if (e.has_power()) {
    out << ",\"power_w\":" << num(e.power_w);
  } else {
    out << ",\"power_w\":null";
  }
  const StepBreakdown& b = e.breakdown;
  if (b.total_s() > 0.0) {
    out << ",\"breakdown\":{\"weight_s\":" << num(b.weight_s)
        << ",\"kv_s\":" << num(b.kv_s) << ",\"compute_s\":" << num(b.compute_s)
        << ",\"launch_s\":" << num(b.launch_s)
        << ",\"quant_extra_s\":" << num(b.quant_extra_s)
        << ",\"cpu_stretch_s\":" << num(b.cpu_stretch_s) << "}";
  }
}

// Governor actions ride after the step events (one JSON object per action).
// Emitted only when a governor ran, so governor-free traces serialize
// byte-identically to before the event type existed.
void governor_fields(std::ostringstream& out, const GovernorEvent& e) {
  out << "\"governor\":\"" << governor_event_name(e.kind) << "\",\"t_s\":" << num(e.t_s)
      << ",\"mode\":\"" << e.mode << "\",\"power_w\":" << num(e.power_w);
  if (e.temp_c > 0.0) out << ",\"temp_c\":" << num(e.temp_c);
}

// Prefix-cache actions follow the same contract: only emitted when the
// serving engine ran with the cache enabled, so cache-disabled traces stay
// byte-identical to the pre-cache engine.
void prefix_cache_fields(std::ostringstream& out, const PrefixCacheEvent& e) {
  out << "\"prefix_cache\":\"" << prefix_cache_event_name(e.kind)
      << "\",\"t_s\":" << num(e.t_s) << ",\"request_id\":" << e.request_id
      << ",\"tokens\":" << e.tokens << ",\"blocks\":" << e.blocks;
  if (e.bytes_saved != 0) out << ",\"bytes_saved\":" << e.bytes_saved;
}

// Fleet tag: a timeline carrying a device id gets a device_id field on every
// serialized object. Untagged timelines (every single-device run) append
// nothing, keeping their exports byte-identical to the pre-fleet format.
void device_suffix(std::ostringstream& out, const ExecutionTimeline& timeline) {
  if (timeline.device_id() >= 0) out << ",\"device_id\":" << timeline.device_id();
}

// One timeline's Chrome objects (process metadata + events), without the
// enclosing traceEvents array: the single-timeline exporter wraps exactly
// one of these; the fleet exporter concatenates one per device, with each
// device's events on its own Chrome process (pid = device_id).
void append_chrome_timeline(std::ostringstream& out, const ExecutionTimeline& timeline,
                            const std::string& process_name) {
  const int pid = timeline.device_id() >= 0 ? timeline.device_id() : 0;
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"tid\":0,"
         "\"args\":{\"name\":\""
      << process_name << "\"}}";
  for (const auto& e : timeline.events()) {
    // Overlapping events (cloud offload) go on their own track so Chrome's
    // flame view does not interleave them with the device timeline.
    const int tid = e.phase == Phase::kOffload ? 1 : 0;
    out << ",{\"name\":\"" << phase_name(e.phase) << "\",\"cat\":\"" << phase_name(e.phase)
        << "\",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"ts\":" << num(e.t_start_s * 1e6) << ",\"dur\":" << num(e.duration_s * 1e6)
        << ",\"args\":{";
    std::ostringstream fields;
    event_fields(fields, e);
    device_suffix(fields, timeline);
    out << fields.str() << "}}";
  }
  // Governor actions render as instant events on the device track, so a
  // power-mode step-down is visible at the step where throttling bit.
  for (const auto& g : timeline.governor_events()) {
    out << ",{\"name\":\"governor:" << governor_event_name(g.kind)
        << "\",\"cat\":\"governor\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid << ",\"tid\":0"
        << ",\"ts\":" << num(g.t_s * 1e6) << ",\"args\":{";
    std::ostringstream fields;
    governor_fields(fields, g);
    device_suffix(fields, timeline);
    out << fields.str() << "}}";
  }
  // Prefix-cache actions render the same way: hit/miss at admission time,
  // insert at retirement, evict where allocator pressure reclaimed blocks.
  for (const auto& p : timeline.prefix_cache_events()) {
    out << ",{\"name\":\"prefix_cache:" << prefix_cache_event_name(p.kind)
        << "\",\"cat\":\"prefix_cache\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid
        << ",\"tid\":0"
        << ",\"ts\":" << num(p.t_s * 1e6) << ",\"args\":{";
    std::ostringstream fields;
    prefix_cache_fields(fields, p);
    device_suffix(fields, timeline);
    out << fields.str() << "}}";
  }
}

}  // namespace

std::string to_jsonl(const ExecutionTimeline& timeline) {
  std::ostringstream out;
  for (const auto& e : timeline.events()) {
    out << "{";
    event_fields(out, e);
    device_suffix(out, timeline);
    out << "}\n";
  }
  for (const auto& g : timeline.governor_events()) {
    out << "{";
    governor_fields(out, g);
    device_suffix(out, timeline);
    out << "}\n";
  }
  for (const auto& p : timeline.prefix_cache_events()) {
    out << "{";
    prefix_cache_fields(out, p);
    device_suffix(out, timeline);
    out << "}\n";
  }
  return out.str();
}

std::string to_chrome_trace_json(const ExecutionTimeline& timeline,
                                 const std::string& process_name) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  append_chrome_timeline(out, timeline, process_name);
  out << "]}\n";
  return out.str();
}

std::string to_chrome_trace_json_multi(
    const std::vector<const ExecutionTimeline*>& timelines,
    const std::vector<std::string>& process_names) {
  ORINSIM_CHECK(timelines.size() == process_names.size(),
                "trace export: one process name per timeline");
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < timelines.size(); ++i) {
    if (i > 0) out << ",";
    append_chrome_timeline(out, *timelines[i], process_names[i]);
  }
  out << "]}\n";
  return out.str();
}

namespace {

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  ORINSIM_CHECK(out.good(), "trace export: cannot write " + path);
  out << content;
  ORINSIM_CHECK(out.good(), "trace export: write failed for " + path);
}

}  // namespace

void write_jsonl(const ExecutionTimeline& timeline, const std::string& path) {
  write_file(path, to_jsonl(timeline));
}

void write_chrome_trace(const ExecutionTimeline& timeline, const std::string& path,
                        const std::string& process_name) {
  write_file(path, to_chrome_trace_json(timeline, process_name));
}

}  // namespace orinsim::trace
