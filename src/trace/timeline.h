// ExecutionTimeline: the accumulator every simulation loop writes into and
// every metric is read out of.
//
// Emission model:
//  - emit() appends an event at the sequential cursor (`now`) and advances
//    it — the common case for a device executing one thing at a time.
//  - stall_until() fills idle gaps with explicit kStall events so the sum of
//    event durations always equals the makespan (trace conservation, tested).
//  - append_at() places an event at an arbitrary start without moving the
//    cursor — for work overlapping the local device (cloud offload).
//
// Request bookkeeping rides on the same object: begin/start/finish_request
// record per-request arrival → dispatch → completion, from which latencies
// and queueing delays are derived.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "telemetry/power_sampler.h"
#include "trace/step_event.h"

namespace orinsim::trace {

// Shared mean/p95 summary of a latency population (one implementation for
// every scheduler result type; built on core/stats).
struct LatencySummary {
  std::size_t count = 0;
  double mean_s = 0.0;
  double p95_s = 0.0;

  static LatencySummary from(std::span<const double> latencies_s);
};

// Request-lifecycle transitions emitted by the serving engine, alongside the
// StepEvent stream: admission into the running set, preemption back to the
// queue (KV block exhaustion), and retirement. RequestRecords keep the
// arrival/start/finish scalars; these events capture *every* transition, so
// a request preempted twice shows three admissions.
enum class RequestEventKind { kAdmit, kPreempt, kRetire };

std::string request_event_name(RequestEventKind kind);

struct RequestEvent {
  std::size_t request_id = 0;
  RequestEventKind kind = RequestEventKind::kAdmit;
  double t_s = 0.0;
};

// Power/thermal governor actions emitted by the serving engine so throttling
// is visible in exported traces: a power-mode step down the Table 2 ladder
// (triggered by a board power cap or the thermal RC loop), and admission
// deferral toggles once the ladder floor is reached.
enum class GovernorEventKind {
  kPowerCapStepDown,
  kThermalStepDown,
  kAdmitDefer,
  kAdmitResume,
};

std::string governor_event_name(GovernorEventKind kind);

struct GovernorEvent {
  double t_s = 0.0;
  GovernorEventKind kind = GovernorEventKind::kPowerCapStepDown;
  std::string mode;      // power mode in effect after the action
  double power_w = 0.0;  // observed step power that triggered the action
  double temp_c = 0.0;   // junction estimate at the action (0: thermals off)
};

// Prefix-cache actions emitted by the serving engine so cross-request KV
// reuse is visible in exported traces: a lookup outcome per admission (hit
// with the matched token count / miss), block insertion on retirement, and
// LRU eviction under allocator pressure. Conservation (hits + misses ==
// lookups, bytes_saved == hit tokens' KV footprint) is pinned by tests.
enum class PrefixCacheEventKind { kHit, kMiss, kInsert, kEvict };

std::string prefix_cache_event_name(PrefixCacheEventKind kind);

struct PrefixCacheEvent {
  double t_s = 0.0;
  PrefixCacheEventKind kind = PrefixCacheEventKind::kMiss;
  std::size_t request_id = 0;   // hit/miss/insert; 0 for evictions
  std::size_t tokens = 0;       // hit: matched tokens; insert/evict: block tokens
  std::size_t blocks = 0;       // blocks attached / inserted / evicted
  std::size_t bytes_saved = 0;  // hit: KV bytes not re-prefilled
};

struct RequestRecord {
  double arrival_s = 0.0;
  double start_s = 0.0;   // when its batch/step first executed
  double finish_s = 0.0;  // when its last token completed
  bool started = false;
  bool completed = false;

  double queueing_s() const { return start_s - arrival_s; }
  double latency_s() const { return finish_s - arrival_s; }
};

class ExecutionTimeline {
 public:
  // --- emission ---------------------------------------------------------

  // Appends at the sequential cursor and advances it. Returns the event id.
  // `chunk` annotates prefill events with the chunk size of the batched
  // prompt pass (0 = token-at-a-time / not applicable).
  std::size_t emit(Phase phase, double duration_s, std::size_t batch, double ctx = 0.0,
                   double power_w = kPowerUnset, const StepBreakdown& breakdown = {},
                   std::size_t chunk = 0);

  // Emits a kStall (batch 0, no power) covering [now, t) if t > now.
  void stall_until(double t);

  // Places an event at an explicit start time without moving the cursor
  // (overlapping work, e.g. cloud offload).
  std::size_t append_at(double t_start_s, Phase phase, double duration_s,
                        std::size_t batch, double ctx = 0.0,
                        double power_w = kPowerUnset,
                        const StepBreakdown& breakdown = {}, std::size_t chunk = 0);

  // Sequential cursor: end of the last emit()/stall_until() event.
  double now() const noexcept { return now_; }

  // --- request bookkeeping ---------------------------------------------

  std::size_t begin_request(double arrival_s);
  void start_request(std::size_t id, double t);
  // Completion order is preserved: request_latencies() lists latencies in
  // the order finish_request was called (retirement order).
  void finish_request(std::size_t id, double t);

  // Records a lifecycle transition for request `id` at time t. Orthogonal to
  // the scalar bookkeeping above: start/finish_request feed latencies,
  // request_event() feeds the transition log.
  void request_event(std::size_t id, RequestEventKind kind, double t);

  // Records a governor action (power-mode step down, admission deferral) at
  // time t; serialized by the exporters only when present, so traces from
  // governor-free runs keep their exact legacy serialization.
  void governor_event(GovernorEventKind kind, double t, std::string mode,
                      double power_w, double temp_c);

  // Records a prefix-cache action at time t; like governor events, these are
  // serialized only when present, so cache-disabled traces stay byte-
  // identical to the pre-cache engine.
  void prefix_cache_event(PrefixCacheEventKind kind, double t, std::size_t request_id,
                          std::size_t tokens, std::size_t blocks,
                          std::size_t bytes_saved);

  // Annotates an already-emitted event (by the id emit()/append_at()
  // returned) with KV block-pool occupancy.
  void set_kv_blocks(std::size_t event_id, std::size_t used, std::size_t total);

  // Annotates an already-emitted event with the ids of the requests active
  // during it — the basis for per-request energy attribution. Not serialized.
  void set_participants(std::size_t event_id, std::span<const std::size_t> request_ids);

  // Tags the whole timeline as belonging to fleet device `id`: exporters add
  // a device_id field to every serialized event (JSONL) and place the events
  // on Chrome process `id`. Never set by single-device runs, so their
  // exports keep the exact pre-fleet serialization.
  static constexpr int kNoDevice = -1;
  void set_device_id(std::size_t id) { device_id_ = static_cast<int>(id); }
  int device_id() const noexcept { return device_id_; }

  // --- derived metrics --------------------------------------------------

  const std::vector<StepEvent>& events() const noexcept { return events_; }
  bool empty() const noexcept { return events_.empty(); }

  // Max event end over all events (cloud events may outlive the cursor).
  double makespan_s() const;
  // Sum of all event durations (== makespan for gap-free sequential traces).
  double duration_sum_s() const;
  // Sum of durations excluding stalls.
  double busy_s() const;

  // Energy over events that carry power: sum(power * duration), accumulated
  // in emission order (bit-stable vs the former per-loop accounting).
  double total_energy_j() const;

  // Per-request energy attribution: each powered event's energy is split
  // evenly across the requests recorded as its participants (idle power is
  // thereby amortized over batch occupancy — a request sharing a step with
  // N-1 others carries 1/N of the board draw). Returns one entry per
  // begin_request() call. When every powered event carries participants (the
  // serving engine guarantees this), the sum equals total_energy_j() up to
  // rounding; powered events without participants contribute to no request.
  std::vector<double> per_request_energy_j() const;

  // Piecewise-constant power signal of the powered events, in emission
  // order, feeding the jtop-style sampling pipeline. Events without power
  // are skipped (they contribute no sensor-visible segment).
  telemetry::PowerSignal power_signal() const;

  double phase_time_s(Phase phase) const;
  std::size_t count(Phase phase) const;
  // Mean batch size over events of `phase` (e.g. static-batch occupancy).
  double mean_batch(Phase phase) const;
  // Component-wise mean breakdown over events of `phase`.
  StepBreakdown mean_breakdown(Phase phase) const;
  // Time-weighted mean of `batch` across all events, normalized by the
  // makespan (continuous batching's mean concurrency; stalls weigh zero).
  double time_weighted_batch() const;

  const std::vector<RequestRecord>& requests() const noexcept { return requests_; }
  // Latencies of completed requests, in retirement order.
  const std::vector<double>& request_latencies() const noexcept { return latencies_; }
  LatencySummary latency_summary() const { return LatencySummary::from(latencies_); }

  const std::vector<RequestEvent>& request_events() const noexcept {
    return request_events_;
  }
  std::size_t request_event_count(RequestEventKind kind) const;

  const std::vector<GovernorEvent>& governor_events() const noexcept {
    return governor_events_;
  }
  std::size_t governor_event_count(GovernorEventKind kind) const;

  const std::vector<PrefixCacheEvent>& prefix_cache_events() const noexcept {
    return prefix_cache_events_;
  }
  std::size_t prefix_cache_event_count(PrefixCacheEventKind kind) const;

  // Time-weighted mean KV pool utilization over events that carry occupancy
  // (0 when none do). Weighted by event duration, not by makespan: stalls
  // and non-annotated events don't dilute the signal.
  double mean_kv_utilization() const;
  // Max kv_blocks_used over all events (peak pool pressure).
  std::size_t peak_kv_blocks() const;

 private:
  std::vector<StepEvent> events_;
  std::vector<RequestRecord> requests_;
  std::vector<RequestEvent> request_events_;
  std::vector<GovernorEvent> governor_events_;
  std::vector<PrefixCacheEvent> prefix_cache_events_;
  // Sparse, indexed by event id (resized on first annotation); empty entry =
  // no participants recorded for that event.
  std::vector<std::vector<std::size_t>> participants_;
  std::vector<double> latencies_;
  double now_ = 0.0;
  int device_id_ = kNoDevice;
};

}  // namespace orinsim::trace
