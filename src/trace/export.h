// Trace observability: serialize an ExecutionTimeline as
//  - JSONL: one JSON object per StepEvent (grep/jq-friendly, streamable)
//  - Chrome trace_event JSON: loads directly in chrome://tracing or Perfetto
//    ("X" complete events, microsecond timestamps).
#pragma once

#include <string>
#include <vector>

#include "trace/timeline.h"

namespace orinsim::trace {

// In-memory renderings (used by tests and by the writers below).
std::string to_jsonl(const ExecutionTimeline& timeline);
std::string to_chrome_trace_json(const ExecutionTimeline& timeline,
                                 const std::string& process_name = "orinsim");

// Merged multi-device rendering: one Chrome process per timeline (pid taken
// from each timeline's device_id), so a fleet run loads as side-by-side
// device tracks in Perfetto. Used by the fleet router's trace export.
std::string to_chrome_trace_json_multi(
    const std::vector<const ExecutionTimeline*>& timelines,
    const std::vector<std::string>& process_names);

// File writers; throw ContractViolation if the path is not writable.
void write_jsonl(const ExecutionTimeline& timeline, const std::string& path);
void write_chrome_trace(const ExecutionTimeline& timeline, const std::string& path,
                        const std::string& process_name = "orinsim");

}  // namespace orinsim::trace
