#include "trace/timeline.h"

#include <algorithm>

#include "core/error.h"
#include "core/stats.h"

namespace orinsim::trace {

std::string phase_name(Phase phase) {
  switch (phase) {
    case Phase::kSetup:
      return "setup";
    case Phase::kPrefill:
      return "prefill";
    case Phase::kDecode:
      return "decode";
    case Phase::kStall:
      return "stall";
    case Phase::kOffload:
      return "offload";
    case Phase::kDraft:
      return "draft";
    case Phase::kVerify:
      return "verify";
  }
  return "?";
}

std::string governor_event_name(GovernorEventKind kind) {
  switch (kind) {
    case GovernorEventKind::kPowerCapStepDown:
      return "power_cap_step_down";
    case GovernorEventKind::kThermalStepDown:
      return "thermal_step_down";
    case GovernorEventKind::kAdmitDefer:
      return "admit_defer";
    case GovernorEventKind::kAdmitResume:
      return "admit_resume";
  }
  return "?";
}

std::string prefix_cache_event_name(PrefixCacheEventKind kind) {
  switch (kind) {
    case PrefixCacheEventKind::kHit:
      return "prefix_hit";
    case PrefixCacheEventKind::kMiss:
      return "prefix_miss";
    case PrefixCacheEventKind::kInsert:
      return "prefix_insert";
    case PrefixCacheEventKind::kEvict:
      return "prefix_evict";
  }
  return "?";
}

std::string request_event_name(RequestEventKind kind) {
  switch (kind) {
    case RequestEventKind::kAdmit:
      return "admit";
    case RequestEventKind::kPreempt:
      return "preempt";
    case RequestEventKind::kRetire:
      return "retire";
  }
  return "?";
}

LatencySummary LatencySummary::from(std::span<const double> latencies_s) {
  LatencySummary s;
  s.count = latencies_s.size();
  s.mean_s = mean(latencies_s);
  s.p95_s = percentile(latencies_s, 95.0);
  return s;
}

std::size_t ExecutionTimeline::emit(Phase phase, double duration_s, std::size_t batch,
                                    double ctx, double power_w,
                                    const StepBreakdown& breakdown, std::size_t chunk) {
  ORINSIM_CHECK(duration_s >= 0.0, "timeline: negative event duration");
  StepEvent e;
  e.t_start_s = now_;
  e.duration_s = duration_s;
  e.phase = phase;
  e.batch = batch;
  e.ctx = ctx;
  e.chunk = chunk;
  e.power_w = power_w;
  e.breakdown = breakdown;
  now_ += duration_s;
  events_.push_back(e);
  return events_.size() - 1;
}

void ExecutionTimeline::stall_until(double t) {
  if (t > now_) {
    emit(Phase::kStall, t - now_, 0);
    // Pin the cursor to the requested instant: now + (t - now) can land one
    // ulp off t, which would perturb arrival comparisons downstream.
    now_ = t;
  }
}

std::size_t ExecutionTimeline::append_at(double t_start_s, Phase phase,
                                         double duration_s, std::size_t batch,
                                         double ctx, double power_w,
                                         const StepBreakdown& breakdown, std::size_t chunk) {
  ORINSIM_CHECK(duration_s >= 0.0, "timeline: negative event duration");
  ORINSIM_CHECK(t_start_s >= 0.0, "timeline: negative event start");
  StepEvent e;
  e.t_start_s = t_start_s;
  e.duration_s = duration_s;
  e.phase = phase;
  e.batch = batch;
  e.ctx = ctx;
  e.chunk = chunk;
  e.power_w = power_w;
  e.breakdown = breakdown;
  events_.push_back(e);
  return events_.size() - 1;
}

std::size_t ExecutionTimeline::begin_request(double arrival_s) {
  RequestRecord r;
  r.arrival_s = arrival_s;
  requests_.push_back(r);
  return requests_.size() - 1;
}

void ExecutionTimeline::start_request(std::size_t id, double t) {
  ORINSIM_CHECK(id < requests_.size(), "timeline: bad request id");
  requests_[id].start_s = t;
  requests_[id].started = true;
}

void ExecutionTimeline::finish_request(std::size_t id, double t) {
  ORINSIM_CHECK(id < requests_.size(), "timeline: bad request id");
  ORINSIM_CHECK(!requests_[id].completed, "timeline: request finished twice");
  requests_[id].finish_s = t;
  requests_[id].completed = true;
  latencies_.push_back(t - requests_[id].arrival_s);
}

void ExecutionTimeline::request_event(std::size_t id, RequestEventKind kind, double t) {
  ORINSIM_CHECK(id < requests_.size(), "timeline: bad request id");
  request_events_.push_back(RequestEvent{id, kind, t});
}

void ExecutionTimeline::governor_event(GovernorEventKind kind, double t,
                                       std::string mode, double power_w,
                                       double temp_c) {
  governor_events_.push_back(GovernorEvent{t, kind, std::move(mode), power_w, temp_c});
}

void ExecutionTimeline::prefix_cache_event(PrefixCacheEventKind kind, double t,
                                           std::size_t request_id, std::size_t tokens,
                                           std::size_t blocks, std::size_t bytes_saved) {
  prefix_cache_events_.push_back(
      PrefixCacheEvent{t, kind, request_id, tokens, blocks, bytes_saved});
}

void ExecutionTimeline::set_participants(std::size_t event_id,
                                         std::span<const std::size_t> request_ids) {
  ORINSIM_CHECK(event_id < events_.size(), "timeline: bad event id");
  if (participants_.size() <= event_id) participants_.resize(event_id + 1);
  participants_[event_id].assign(request_ids.begin(), request_ids.end());
}

void ExecutionTimeline::set_kv_blocks(std::size_t event_id, std::size_t used,
                                      std::size_t total) {
  ORINSIM_CHECK(event_id < events_.size(), "timeline: bad event id");
  ORINSIM_CHECK(total > 0 && used <= total, "timeline: bad kv block occupancy");
  events_[event_id].kv_blocks_used = used;
  events_[event_id].kv_blocks_total = total;
}

std::size_t ExecutionTimeline::request_event_count(RequestEventKind kind) const {
  std::size_t n = 0;
  for (const auto& e : request_events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::size_t ExecutionTimeline::governor_event_count(GovernorEventKind kind) const {
  std::size_t n = 0;
  for (const auto& e : governor_events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::size_t ExecutionTimeline::prefix_cache_event_count(PrefixCacheEventKind kind) const {
  std::size_t n = 0;
  for (const auto& e : prefix_cache_events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::vector<double> ExecutionTimeline::per_request_energy_j() const {
  std::vector<double> energy(requests_.size(), 0.0);
  const std::size_t annotated = std::min(participants_.size(), events_.size());
  for (std::size_t i = 0; i < annotated; ++i) {
    const StepEvent& e = events_[i];
    const std::vector<std::size_t>& ids = participants_[i];
    if (!e.has_power() || ids.empty()) continue;
    const double share = e.energy_j() / static_cast<double>(ids.size());
    for (std::size_t id : ids) {
      ORINSIM_CHECK(id < energy.size(), "timeline: participant id out of range");
      energy[id] += share;
    }
  }
  return energy;
}

double ExecutionTimeline::mean_kv_utilization() const {
  double integral = 0.0;
  double weight = 0.0;
  for (const auto& e : events_) {
    if (!e.has_kv_occupancy()) continue;
    integral += e.kv_utilization() * e.duration_s;
    weight += e.duration_s;
  }
  return weight > 0.0 ? integral / weight : 0.0;
}

std::size_t ExecutionTimeline::peak_kv_blocks() const {
  std::size_t peak = 0;
  for (const auto& e : events_) peak = std::max(peak, e.kv_blocks_used);
  return peak;
}

double ExecutionTimeline::makespan_s() const {
  double end = 0.0;
  for (const auto& e : events_) end = std::max(end, e.t_end_s());
  return end;
}

double ExecutionTimeline::duration_sum_s() const {
  double sum = 0.0;
  for (const auto& e : events_) sum += e.duration_s;
  return sum;
}

double ExecutionTimeline::busy_s() const {
  double sum = 0.0;
  for (const auto& e : events_) {
    if (e.phase != Phase::kStall) sum += e.duration_s;
  }
  return sum;
}

double ExecutionTimeline::total_energy_j() const {
  double e_j = 0.0;
  for (const auto& e : events_) {
    if (e.has_power()) e_j += e.power_w * e.duration_s;
  }
  return e_j;
}

telemetry::PowerSignal ExecutionTimeline::power_signal() const {
  telemetry::PowerSignal signal;
  for (const auto& e : events_) {
    if (e.has_power()) signal.append(e.duration_s, e.power_w);
  }
  return signal;
}

double ExecutionTimeline::phase_time_s(Phase phase) const {
  double sum = 0.0;
  for (const auto& e : events_) {
    if (e.phase == phase) sum += e.duration_s;
  }
  return sum;
}

std::size_t ExecutionTimeline::count(Phase phase) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.phase == phase) ++n;
  }
  return n;
}

double ExecutionTimeline::mean_batch(Phase phase) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.phase == phase) {
      sum += static_cast<double>(e.batch);
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

StepBreakdown ExecutionTimeline::mean_breakdown(Phase phase) const {
  StepBreakdown acc{};
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.phase != phase) continue;
    acc.weight_s += e.breakdown.weight_s;
    acc.kv_s += e.breakdown.kv_s;
    acc.compute_s += e.breakdown.compute_s;
    acc.launch_s += e.breakdown.launch_s;
    acc.quant_extra_s += e.breakdown.quant_extra_s;
    acc.cpu_stretch_s += e.breakdown.cpu_stretch_s;
    ++n;
  }
  if (n == 0) return acc;
  const double d = static_cast<double>(n);
  acc.weight_s /= d;
  acc.kv_s /= d;
  acc.compute_s /= d;
  acc.launch_s /= d;
  acc.quant_extra_s /= d;
  acc.cpu_stretch_s /= d;
  return acc;
}

double ExecutionTimeline::time_weighted_batch() const {
  const double span = makespan_s();
  if (span <= 0.0) return 0.0;
  double integral = 0.0;
  for (const auto& e : events_) {
    integral += static_cast<double>(e.batch) * e.duration_s;
  }
  return integral / span;
}

}  // namespace orinsim::trace
