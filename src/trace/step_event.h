// The execution-trace spine: one event vocabulary shared by every scheduler
// and backend in the repo.
//
// The paper's contribution is a measurement methodology — per-batch latency
// decomposition, jtop-style power sampling, trapezoidal energy — and before
// this module existed that accounting was re-implemented by every simulation
// loop. Now a loop *emits* StepEvents into an ExecutionTimeline (timeline.h)
// and every reported metric (latency, makespan, energy, power signal,
// occupancy) is *derived* from the one event stream, so a new scheduler or
// backend gets the whole measurement pipeline for free.
#pragma once

#include <cstddef>
#include <string>

namespace orinsim::trace {

// What the device (or a remote endpoint) was doing during an event.
//  kSetup   : host-side run overhead (tokenization, allocation)
//  kPrefill : prompt ingestion, compute-saturated
//  kDecode  : autoregressive decode steps (or a whole static batch at
//             batch granularity, for request-level schedulers)
//  kStall   : device idle, waiting for arrivals
//  kOffload : request executing on a remote/cloud endpoint (may overlap the
//             local timeline)
//  kDraft   : speculative decoding, draft-model step
//  kVerify  : speculative decoding, target-model verification pass
enum class Phase { kSetup, kPrefill, kDecode, kStall, kOffload, kDraft, kVerify };

std::string phase_name(Phase phase);

// Cost decomposition of one decode step (roofline model terms). Owned by the
// trace layer so both the simulator and the telemetry consumers can speak it
// without depending on each other; sim::StepBreakdown aliases this type.
struct StepBreakdown {
  double weight_s = 0.0;
  double kv_s = 0.0;
  double compute_s = 0.0;
  double launch_s = 0.0;
  double quant_extra_s = 0.0;  // extra time attributed to quantized kernels
  double cpu_stretch_s = 0.0;  // extra time from CPU-side slowdown

  double total_s() const {
    return weight_s + kv_s + compute_s + launch_s + quant_extra_s + cpu_stretch_s;
  }
  // Fraction of the step spent moving bytes (used by the power model).
  double memory_share() const {
    const double t = total_s();
    return t > 0.0 ? (weight_s + kv_s) / t : 0.0;
  }
  double compute_share() const {
    const double t = total_s();
    return t > 0.0 ? (compute_s + quant_extra_s) / t : 0.0;
  }
};

// Power is optional: the functional (wall-clock) backend and cloud endpoints
// have no board sensor, so their events carry no power and contribute no
// energy. Negative means unset.
inline constexpr double kPowerUnset = -1.0;

struct StepEvent {
  double t_start_s = 0.0;
  double duration_s = 0.0;
  Phase phase = Phase::kDecode;
  std::size_t batch = 0;        // sequences active during the event
  double ctx = 0.0;             // context position (decode) / prompt tokens (prefill)
  std::size_t chunk = 0;        // prefill chunk size (0: token-at-a-time or n/a)
  StepBreakdown breakdown;      // zero unless the emitter models step cost
  double power_w = kPowerUnset;

  // KV block-pool occupancy at the end of the event (paged serving engine);
  // kv_blocks_total == 0 means the emitter doesn't track a pool.
  std::size_t kv_blocks_used = 0;
  std::size_t kv_blocks_total = 0;

  bool has_power() const { return power_w >= 0.0; }
  bool has_kv_occupancy() const { return kv_blocks_total > 0; }
  double kv_utilization() const {
    return has_kv_occupancy() ? static_cast<double>(kv_blocks_used) /
                                    static_cast<double>(kv_blocks_total)
                              : 0.0;
  }
  double t_end_s() const { return t_start_s + duration_s; }
  double energy_j() const { return has_power() ? power_w * duration_s : 0.0; }
};

}  // namespace orinsim::trace
