#include "fleet/router.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/error.h"
#include "core/stats.h"
#include "trace/export.h"

namespace orinsim::fleet {

namespace {

// FNV-1a over the little-endian bytes of a token-id prefix: the stable
// request key prefix_affinity hashes. Stable across platforms (no
// pointer/locale input), so routing decisions are reproducible.
std::uint64_t fnv1a_prefix(const std::vector<TokenId>& tokens, std::size_t n) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = static_cast<std::uint32_t>(tokens[i]);
    for (int b = 0; b < 4; ++b) {
      h ^= (v >> (8 * b)) & 0xffU;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

// SplitMix64 finalizer: the rendezvous weight mixer.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// End-of-first-prefill time per request id (the first-token instant), or
// < 0 for requests that never reached a prefill wave. Walks the admit
// events in chronological order with a monotone cursor into the step
// stream: a request's first token materializes at the end of the first
// kPrefill event starting at (or after) its first admission — admissions
// sharing a timestamp share that wave.
std::vector<double> first_token_times(const serving::EngineResult& result) {
  const trace::ExecutionTimeline& tl = result.timeline;
  const auto& steps = tl.events();
  std::vector<double> first_token(tl.requests().size(), -1.0);
  std::vector<bool> seen(tl.requests().size(), false);
  std::size_t cursor = 0;
  for (const trace::RequestEvent& ev : tl.request_events()) {
    if (ev.kind != trace::RequestEventKind::kAdmit) continue;
    if (ev.request_id >= seen.size() || seen[ev.request_id]) continue;
    seen[ev.request_id] = true;
    while (cursor < steps.size() &&
           !(steps[cursor].phase == trace::Phase::kPrefill &&
             steps[cursor].t_start_s >= ev.t_s - 1e-12)) {
      ++cursor;
    }
    if (cursor < steps.size()) {
      first_token[ev.request_id] =
          steps[cursor].t_start_s + steps[cursor].duration_s;
    }
  }
  return first_token;
}

}  // namespace

std::string route_policy_name(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kRoundRobin:
      return "round_robin";
    case RoutePolicy::kShortestQueue:
      return "shortest_queue";
    case RoutePolicy::kPowerHeadroom:
      return "power_headroom";
    case RoutePolicy::kPrefixAffinity:
      return "prefix_affinity";
  }
  return "unknown";
}

RoutePolicy route_policy_by_name(const std::string& name) {
  for (RoutePolicy p : all_route_policies()) {
    if (route_policy_name(p) == name) return p;
  }
  ORINSIM_CHECK(false, "unknown route policy: " + name);
  return RoutePolicy::kRoundRobin;
}

const std::vector<RoutePolicy>& all_route_policies() {
  static const std::vector<RoutePolicy> kAll = {
      RoutePolicy::kRoundRobin, RoutePolicy::kShortestQueue,
      RoutePolicy::kPowerHeadroom, RoutePolicy::kPrefixAffinity};
  return kAll;
}

PercentileSummary PercentileSummary::from(std::vector<double> values) {
  PercentileSummary s;
  s.count = values.size();
  if (!values.empty()) {
    s.p50_s = percentile(values, 50.0);
    s.p99_s = percentile(values, 99.0);
  }
  return s;
}

std::vector<double> request_ttfts(const serving::EngineResult& result) {
  const std::vector<double> first_token = first_token_times(result);
  const auto& records = result.timeline.requests();
  std::vector<double> ttfts;
  for (std::size_t id = 0; id < records.size(); ++id) {
    if (!records[id].completed || first_token[id] < 0.0) continue;
    ttfts.push_back(first_token[id] - records[id].arrival_s);
  }
  return ttfts;
}

std::vector<double> request_tpots(const serving::EngineResult& result) {
  const std::vector<double> first_token = first_token_times(result);
  const auto& records = result.timeline.requests();
  std::vector<double> tpots;
  for (std::size_t id = 0; id < records.size(); ++id) {
    if (!records[id].completed || first_token[id] < 0.0) continue;
    if (id >= result.requests.size()) continue;
    const std::size_t generated = result.requests[id].generated;
    if (generated < 2) continue;
    tpots.push_back((records[id].finish_s - first_token[id]) /
                    static_cast<double>(generated - 1));
  }
  return tpots;
}

std::string FleetResult::to_chrome_trace_json() const {
  std::vector<const trace::ExecutionTimeline*> timelines;
  timelines.reserve(devices.size());
  for (const serving::EngineResult& r : devices) timelines.push_back(&r.timeline);
  return trace::to_chrome_trace_json_multi(timelines, device_names);
}

FleetRouter::FleetRouter(std::vector<std::unique_ptr<serving::ServingDevice>> devices,
                         RouterOptions options)
    : devices_(std::move(devices)), options_(options) {
  ORINSIM_CHECK(!devices_.empty(), "fleet: at least one device required");
  for (std::size_t i = 0; i < devices_.size(); ++i) devices_[i]->set_device_id(i);
}

std::size_t FleetRouter::route(const serving::Request& req) {
  const std::size_t n = devices_.size();
  switch (options_.policy) {
    case RoutePolicy::kRoundRobin:
      return rr_next_++ % n;

    case RoutePolicy::kShortestQueue: {
      std::size_t best = 0;
      for (std::size_t i = 1; i < n; ++i) {
        if (devices_[i]->load() < devices_[best]->load()) best = i;
      }
      return best;
    }

    case RoutePolicy::kPowerHeadroom: {
      // Lexicographic: not-deferring beats deferring, then the largest
      // power-cap headroom, then the lighter load, then the lower index.
      // Devices without a cap report infinite headroom (nothing to respect).
      auto headroom = [&](std::size_t i) {
        const double cap = devices_[i]->power_cap_w();
        return cap > 0.0 ? cap - devices_[i]->mean_power_w()
                         : std::numeric_limits<double>::infinity();
      };
      std::size_t best = 0;
      for (std::size_t i = 1; i < n; ++i) {
        const bool bd = devices_[best]->governor_deferring();
        const bool id = devices_[i]->governor_deferring();
        if (id != bd) {
          if (!id) best = i;
          continue;
        }
        const double hb = headroom(best);
        const double hi = headroom(i);
        if (hi != hb) {
          if (hi > hb) best = i;
          continue;
        }
        if (devices_[i]->load() < devices_[best]->load()) best = i;
      }
      return best;
    }

    case RoutePolicy::kPrefixAffinity: {
      // Requests without materialized prompts carry no prefix to hash; fall
      // back to least load so they at least balance.
      if (req.prompt.empty()) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < n; ++i) {
          if (devices_[i]->load() < devices_[best]->load()) best = i;
        }
        return best;
      }
      // Rendezvous (highest-random-weight) hashing: stable per prefix, and
      // adding/removing a device only remaps that device's share.
      const std::size_t prefix =
          std::min(options_.affinity_tokens, req.prompt.size());
      const std::uint64_t key = fnv1a_prefix(req.prompt, prefix);
      std::size_t best = 0;
      std::uint64_t best_w = mix64(key ^ mix64(1));
      for (std::size_t i = 1; i < n; ++i) {
        const std::uint64_t w = mix64(key ^ mix64(i + 1));
        if (w > best_w) {
          best_w = w;
          best = i;
        }
      }
      return best;
    }
  }
  return 0;
}

FleetResult FleetRouter::run(std::vector<serving::Request> requests) {
  for (std::size_t i = 1; i < requests.size(); ++i) {
    ORINSIM_CHECK(requests[i].arrival_s >= requests[i - 1].arrival_s,
                  "fleet: arrivals must be dispatched in global time order");
  }

  FleetResult out;
  out.policy = options_.policy;
  out.device_of_request.reserve(requests.size());

  for (serving::Request& req : requests) {
    const double t = req.arrival_s;
    // Advance every device's virtual clock to the arrival instant so the
    // policy reads queue depths / power / governor state as of time t. Safe
    // because dispatch order is global arrival order: a device's pending
    // arrivals are never later than t, so it cannot stall-jump past t.
    for (auto& device : devices_) {
      while (!device->idle() && device->now() < t) device->step();
    }
    const std::size_t target = route(req);
    out.device_of_request.push_back(target);
    devices_[target]->submit(std::move(req));
  }
  for (auto& device : devices_) {
    while (device->step() == serving::ContinuousEngine::Step::kWorked) {
    }
  }

  std::vector<double> ttfts;
  std::vector<double> tpots;
  std::vector<double> latencies;
  std::size_t within_slo = 0;
  for (auto& device : devices_) {
    out.device_names.push_back(device->name());
    serving::EngineResult r = device->finish();
    out.makespan_s = std::max(out.makespan_s, r.makespan_s);
    out.completed += r.latencies_s.size();
    for (double lat : r.latencies_s) {
      latencies.push_back(lat);
      if (options_.slo_s > 0.0 && lat > options_.slo_s) {
        ++out.slo_violations;
      } else {
        ++within_slo;
      }
    }
    for (double v : request_ttfts(r)) ttfts.push_back(v);
    for (double v : request_tpots(r)) tpots.push_back(v);
    out.energy_j += r.energy_j;
    out.total_tokens += r.total_tokens;
    out.governor_step_downs += r.governor_step_downs;
    out.preemptions += r.preemptions;
    out.prefix_cache.lookups += r.prefix_cache.lookups;
    out.prefix_cache.hits += r.prefix_cache.hits;
    out.prefix_cache.misses += r.prefix_cache.misses;
    out.prefix_cache.hit_tokens += r.prefix_cache.hit_tokens;
    out.prefix_cache.bytes_saved += r.prefix_cache.bytes_saved;
    out.prefix_cache.inserted_blocks += r.prefix_cache.inserted_blocks;
    out.prefix_cache.evicted_blocks += r.prefix_cache.evicted_blocks;
    out.devices.push_back(std::move(r));
  }
  out.goodput_rps =
      out.makespan_s > 0.0 ? static_cast<double>(within_slo) / out.makespan_s : 0.0;
  out.ttft = PercentileSummary::from(std::move(ttfts));
  out.tpot = PercentileSummary::from(std::move(tpots));
  out.latency = PercentileSummary::from(std::move(latencies));
  out.energy_per_token_j =
      out.total_tokens > 0 ? out.energy_j / static_cast<double>(out.total_tokens) : 0.0;
  return out;
}

std::vector<serving::Request> sim_fleet_requests(const SimFleetConfig& config) {
  ORINSIM_CHECK(config.tenants > 0, "fleet: tenants must be > 0");
  const std::vector<double> arrivals = config.arrivals.generate();
  Rng rng(config.prompt_seed);
  ZipfSampler tenant_ranks(config.tenants, config.tenant_zipf_s);

  std::vector<serving::Request> requests;
  requests.reserve(arrivals.size());
  const std::size_t prefix =
      std::min(config.options.affinity_tokens, config.seq.input);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    serving::Request req;
    req.id = i;
    req.arrival_s = arrivals[i];
    req.prompt_tokens = config.seq.input;
    req.max_new_tokens = config.seq.output;
    // Tenant-tagged prompt: a shared per-tenant prefix (what prefix_affinity
    // hashes and a prefix cache would reuse) plus a unique per-request tail.
    // The sim backend never reads these tokens; they exist for routing.
    const std::size_t tenant = tenant_ranks.sample(rng);
    req.prompt.resize(config.seq.input);
    for (std::size_t j = 0; j < config.seq.input; ++j) {
      req.prompt[j] = j < prefix ? static_cast<TokenId>(1 + tenant)
                                 : static_cast<TokenId>(1 + config.tenants + i);
    }
    requests.push_back(std::move(req));
  }
  return requests;
}

FleetResult run_sim_fleet(const SimFleetConfig& config, RoutePolicy policy) {
  ORINSIM_CHECK(!config.devices.empty(), "fleet: no devices configured");
  std::vector<std::unique_ptr<serving::ServingDevice>> devices;
  devices.reserve(config.devices.size());
  for (const serving::ServingDevice::SimConfig& dc : config.devices) {
    devices.push_back(std::make_unique<serving::ServingDevice>(dc));
  }
  RouterOptions options = config.options;
  options.policy = policy;
  FleetRouter router(std::move(devices), options);
  return router.run(sim_fleet_requests(config));
}

}  // namespace orinsim::fleet
