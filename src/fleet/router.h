// Fleet-scale edge serving: N ServingDevices stepped in lockstep virtual
// time behind one arrival stream, with a pluggable routing policy deciding
// which device each request lands on.
//
// The paper studies one Orin AGX under batch/power-mode sweeps; its natural
// deployment question is the next scale up — a rack (or storefront) of
// heterogeneous Jetsons serving one workload. The router reproduces that
// setting entirely in virtual time: devices are the simulated (or
// functional) single-device engines unchanged, and the dispatch loop's only
// contract is that arrivals are handed over in global time order, so every
// policy sees queue depths, power draw and cache state exactly as of each
// request's arrival instant.
//
// Policies:
//  - round_robin      modulo counter; the no-information baseline.
//  - shortest_queue   least waiting+running load (join-shortest-queue); the
//                     latency-tail workhorse.
//  - power_headroom   energy-aware: skips devices whose governor is
//                     deferring admissions, then routes to the largest
//                     power-cap headroom (cap minus mean attributed draw).
//  - prefix_affinity  rendezvous-hashes the prompt's first affinity_tokens
//                     tokens, so one tenant's shared system prompt keeps
//                     landing on one device and its prefix cache stays hot.
//
// Everything is deterministic: same devices + same requests + same policy
// => identical FleetResult (pinned by test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serving/serving_device.h"
#include "workload/arrivals.h"

namespace orinsim::fleet {

enum class RoutePolicy {
  kRoundRobin,
  kShortestQueue,
  kPowerHeadroom,
  kPrefixAffinity,
};

std::string route_policy_name(RoutePolicy policy);
RoutePolicy route_policy_by_name(const std::string& name);
const std::vector<RoutePolicy>& all_route_policies();

// p50/p99 of a latency population (linear-interpolated percentiles; zeros
// for an empty population).
struct PercentileSummary {
  double p50_s = 0.0;
  double p99_s = 0.0;
  std::size_t count = 0;

  static PercentileSummary from(std::vector<double> values);
};

// Per-request serving latencies read off one device's executed schedule:
//  - TTFT: arrival to the end of the first prefill wave after the request's
//    first admission (time to first token under chunked prefill).
//  - TPOT: (finish - first-token time) / (generated - 1), the steady decode
//    cadence; requests generating <= 1 token contribute no TPOT.
// Only completed requests contribute. Shared by the fleet aggregation,
// benches and tests.
std::vector<double> request_ttfts(const serving::EngineResult& result);
std::vector<double> request_tpots(const serving::EngineResult& result);

struct RouterOptions {
  RoutePolicy policy = RoutePolicy::kShortestQueue;
  // Completion-latency SLO for goodput (0: every completion counts).
  double slo_s = 0.0;
  // Prompt-prefix length (tokens) hashed by prefix_affinity.
  std::size_t affinity_tokens = 64;
};

// One fleet run's report: the per-device EngineResults plus the aggregates
// the routing comparison is judged on.
struct FleetResult {
  RoutePolicy policy = RoutePolicy::kRoundRobin;
  std::vector<std::string> device_names;            // device order
  std::vector<serving::EngineResult> devices;       // finish()ed, device order
  std::vector<std::size_t> device_of_request;       // routing decision per request

  double makespan_s = 0.0;       // latest device clock at drain
  std::size_t completed = 0;
  std::size_t slo_violations = 0;  // completed but over the SLO
  double goodput_rps = 0.0;        // completions within SLO / makespan
  PercentileSummary ttft;
  PercentileSummary tpot;
  PercentileSummary latency;       // arrival -> last token
  double energy_j = 0.0;
  std::size_t total_tokens = 0;    // prompt + generated
  double energy_per_token_j = 0.0;
  std::size_t governor_step_downs = 0;
  std::size_t preemptions = 0;
  serving::EngineResult::PrefixCacheSummary prefix_cache;  // summed

  double cache_hit_rate() const { return prefix_cache.hit_rate(); }

  // Merged Chrome trace: one process per device (pid = device id), loads as
  // side-by-side device tracks in Perfetto.
  std::string to_chrome_trace_json() const;
};

// Steps the devices in lockstep and dispatches each arrival under the
// policy. Single-shot: run() consumes the devices' engines.
class FleetRouter {
 public:
  FleetRouter(std::vector<std::unique_ptr<serving::ServingDevice>> devices,
              RouterOptions options);

  std::size_t device_count() const noexcept { return devices_.size(); }

  // Requests must carry non-decreasing arrival_s (global arrival order;
  // checked). Advances every device to each arrival instant, routes, then
  // drains the fleet and aggregates.
  FleetResult run(std::vector<serving::Request> requests);

 private:
  std::size_t route(const serving::Request& req);

  std::vector<std::unique_ptr<serving::ServingDevice>> devices_;
  RouterOptions options_;
  std::size_t rr_next_ = 0;
};

// Convenience builder for simulated fleets: heterogeneous device configs +
// an arrival process + synthetic multi-tenant prompts (each prompt opens
// with one of `tenants` shared prefixes, Zipf-weighted, so prefix_affinity
// has structure to exploit even though the sim backend never reads tokens).
struct SimFleetConfig {
  std::vector<serving::ServingDevice::SimConfig> devices;
  workload::ArrivalConfig arrivals;
  workload::SeqConfig seq = workload::seq_config_default();
  RouterOptions options;
  std::size_t tenants = 8;
  double tenant_zipf_s = 1.1;
  std::uint64_t prompt_seed = 11;
};

// Builds the devices and the request stream, then routes under `policy`
// (overriding config.options.policy). Deterministic for a fixed config.
FleetResult run_sim_fleet(const SimFleetConfig& config, RoutePolicy policy);

// The synthetic multi-tenant request stream run_sim_fleet dispatches,
// exposed so functional fleets and tests can share it.
std::vector<serving::Request> sim_fleet_requests(const SimFleetConfig& config);

}  // namespace orinsim::fleet
