#include "tokenizer/tokenizer.h"

#include <algorithm>
#include <cctype>

#include "core/error.h"

namespace orinsim {

std::vector<std::string> Tokenizer::pretokenize(std::string_view text) {
  std::vector<std::string> pieces;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      pieces.push_back(current);
      current.clear();
    }
  };
  for (char ch : text) {
    const auto uc = static_cast<unsigned char>(ch);
    if (std::isspace(uc)) {
      flush();
    } else if (std::isalnum(uc) || ch == '\'' || ch == '-') {
      current.push_back(ch);
    } else {
      // Punctuation becomes its own piece.
      flush();
      pieces.emplace_back(1, ch);
    }
  }
  flush();
  return pieces;
}

Tokenizer Tokenizer::train(std::string_view corpus, std::size_t max_words) {
  std::unordered_map<std::string, std::size_t> counts;
  for (auto& piece : pretokenize(corpus)) ++counts[piece];

  std::vector<std::pair<std::string, std::size_t>> ranked(counts.begin(), counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  if (ranked.size() > max_words) ranked.resize(max_words);

  Tokenizer t;
  t.words_.reserve(ranked.size());
  for (auto& [word, _] : ranked) {
    t.word_to_id_.emplace(word, static_cast<TokenId>(kWordBase + t.words_.size()));
    t.words_.push_back(word);
  }
  return t;
}

std::vector<TokenId> Tokenizer::encode(std::string_view text, bool add_bos) const {
  std::vector<TokenId> out;
  if (add_bos) out.push_back(kBos);
  for (auto& piece : pretokenize(text)) {
    auto it = word_to_id_.find(piece);
    if (it != word_to_id_.end()) {
      out.push_back(it->second);
    } else {
      for (char ch : piece) {
        out.push_back(kByteBase + static_cast<unsigned char>(ch));
      }
    }
  }
  return out;
}

std::string Tokenizer::decode(const std::vector<TokenId>& tokens) const {
  std::string out;
  bool pending_space = false;
  bool prev_was_byte = false;
  for (TokenId id : tokens) {
    if (id == kBos || id == kEos || id == kUnk) continue;
    const std::string piece = token_text(id);
    const bool is_byte = id >= kByteBase && id < kWordBase;
    const bool is_punct =
        piece.size() == 1 && !std::isalnum(static_cast<unsigned char>(piece[0]));
    // Byte-fallback runs re-join without spaces (they were one word piece).
    const bool glue = is_byte && prev_was_byte;
    if (pending_space && !is_punct && !glue) out.push_back(' ');
    out += piece;
    pending_space = true;
    prev_was_byte = is_byte;
  }
  return out;
}

std::string Tokenizer::token_text(TokenId id) const {
  if (id == kUnk) return "<unk>";
  if (id == kBos) return "<bos>";
  if (id == kEos) return "<eos>";
  if (id < kWordBase) {
    return std::string(1, static_cast<char>(id - kByteBase));
  }
  const std::size_t idx = id - kWordBase;
  ORINSIM_CHECK(idx < words_.size(), "token id out of range");
  return words_[idx];
}

}  // namespace orinsim
