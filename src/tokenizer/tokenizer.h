// Word-level tokenizer with byte fallback, built from a training corpus.
//
// The study's datasets enter the pipeline as token streams; a full BPE is
// unnecessary because the synthetic corpora have a closed vocabulary. The
// tokenizer still handles out-of-vocabulary text by falling back to byte
// tokens so encode() is total over arbitrary strings.
//
// Token id layout:
//   [0]                      <unk>   (never produced by encode; reserved)
//   [1]                      <bos>
//   [2]                      <eos>
//   [3 .. 3+255]             byte fallback tokens
//   [259 .. 259+vocab-1]     learned word tokens (most frequent first)
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace orinsim {

using TokenId = std::uint32_t;

class Tokenizer {
 public:
  static constexpr TokenId kUnk = 0;
  static constexpr TokenId kBos = 1;
  static constexpr TokenId kEos = 2;
  static constexpr TokenId kByteBase = 3;
  static constexpr TokenId kWordBase = 3 + 256;

  // Builds a vocabulary of the max_words most frequent whitespace-separated
  // words in the corpus (punctuation is split off as separate words).
  static Tokenizer train(std::string_view corpus, std::size_t max_words);

  std::size_t vocab_size() const noexcept { return kWordBase + words_.size(); }
  std::size_t word_count() const noexcept { return words_.size(); }

  std::vector<TokenId> encode(std::string_view text, bool add_bos = false) const;
  std::string decode(const std::vector<TokenId>& tokens) const;

  // The surface form of a single token (bytes render as latin-1 chars).
  std::string token_text(TokenId id) const;

  bool is_word(TokenId id) const noexcept { return id >= kWordBase; }

  // Splits text into word-ish pieces (words, numbers, punctuation runs).
  static std::vector<std::string> pretokenize(std::string_view text);

 private:
  std::vector<std::string> words_;                       // id - kWordBase -> text
  std::unordered_map<std::string, TokenId> word_to_id_;  // text -> id
};

}  // namespace orinsim
