// jtop-style power telemetry over a (simulated or real) power signal.
//
// The paper's estimator pipeline, reproduced exactly:
//  - power sampled every ~2 seconds during a batch
//  - median power per batch reported as the power load
//  - energy = trapezoidal integral of the samples over the batch, summed
//    across batches
// Gaussian measurement noise (seeded, deterministic) models sensor jitter so
// the median/trapezoid estimators do real work in tests.
#pragma once

#include <cstddef>
#include <vector>

#include "core/rng.h"

namespace orinsim::telemetry {

// A piecewise-constant power signal: power_w[i] holds on [t_s[i], t_s[i+1]),
// with one trailing timestamp marking the end of the signal.
struct PowerSignal {
  std::vector<double> t_s;      // segment boundaries, size = segments + 1
  std::vector<double> power_w;  // size = segments

  void append(double duration_s, double watts);
  double duration_s() const;
  double value_at(double t) const;
  // Exact energy of the piecewise-constant signal (ground truth for tests).
  double exact_energy_j() const;
};

struct SampledTrace {
  std::vector<double> t_s;
  std::vector<double> power_w;
};

class PowerSampler {
 public:
  // period_s: jtop default ~2s. noise_sigma: relative sensor noise (0.02 =
  // 2%); pass 0 for exact sampling.
  explicit PowerSampler(double period_s = 2.0, double noise_sigma = 0.02)
      : period_s_(period_s), noise_sigma_(noise_sigma) {}

  // Samples the signal at t = 0, period, 2*period, ..., always including the
  // final instant so short batches still get >= 2 samples. A grid point
  // coinciding with the final instant is not duplicated, and an empty or
  // zero-duration signal yields an empty trace.
  SampledTrace sample(const PowerSignal& signal, Rng& rng) const;

 private:
  double period_s_;
  double noise_sigma_;
};

// The paper's reported statistics for one batch.
struct BatchPowerStats {
  double median_power_w = 0.0;
  double energy_j = 0.0;  // trapezoid over the sampled trace
};

BatchPowerStats summarize(const SampledTrace& trace);

}  // namespace orinsim::telemetry
