// Aggregation of repeated measurement runs, mirroring the paper's protocol:
// one warm-up run (discarded) followed by N measured runs, metrics averaged
// across runs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/stats.h"

namespace orinsim::telemetry {

struct RunMetrics {
  double latency_s = 0.0;
  double throughput_tps = 0.0;
  double median_power_w = 0.0;
  double energy_j = 0.0;
  double energy_per_token_j = 0.0;  // energy_j / (prompt + generated tokens)
};

class RunAggregator {
 public:
  // warmup_runs are recorded but excluded from the aggregate.
  explicit RunAggregator(std::size_t warmup_runs = 1) : warmup_runs_(warmup_runs) {}

  void add(const RunMetrics& run);

  std::size_t measured_count() const;
  std::size_t total_count() const noexcept { return runs_.size(); }

  // Mean metrics across measured (non-warmup) runs.
  RunMetrics mean() const;
  // Relative spread (stddev/mean) of latency across measured runs.
  double latency_cv() const;

 private:
  std::vector<RunMetrics> measured() const;
  std::size_t warmup_runs_;
  std::vector<RunMetrics> runs_;
};

}  // namespace orinsim::telemetry
