#include "telemetry/power_sampler.h"

#include <algorithm>

#include "core/error.h"
#include "core/stats.h"

namespace orinsim::telemetry {

void PowerSignal::append(double duration_s, double watts) {
  ORINSIM_CHECK(duration_s >= 0.0, "PowerSignal: negative duration");
  ORINSIM_CHECK(watts >= 0.0, "PowerSignal: negative power");
  if (t_s.empty()) t_s.push_back(0.0);
  if (duration_s == 0.0) return;
  // Merge with the previous segment when power is identical.
  if (!power_w.empty() && power_w.back() == watts) {
    t_s.back() += duration_s;
    return;
  }
  t_s.push_back(t_s.back() + duration_s);
  power_w.push_back(watts);
}

double PowerSignal::duration_s() const { return t_s.empty() ? 0.0 : t_s.back(); }

double PowerSignal::value_at(double t) const {
  ORINSIM_CHECK(!power_w.empty(), "PowerSignal: empty");
  if (t <= t_s.front()) return power_w.front();
  if (t >= t_s.back()) return power_w.back();
  // Find the segment containing t.
  const auto it = std::upper_bound(t_s.begin(), t_s.end(), t);
  const std::size_t seg = static_cast<std::size_t>(it - t_s.begin()) - 1;
  return power_w[std::min(seg, power_w.size() - 1)];
}

double PowerSignal::exact_energy_j() const {
  double e = 0.0;
  for (std::size_t i = 0; i < power_w.size(); ++i) {
    e += power_w[i] * (t_s[i + 1] - t_s[i]);
  }
  return e;
}

SampledTrace PowerSampler::sample(const PowerSignal& signal, Rng& rng) const {
  ORINSIM_CHECK(period_s_ > 0.0, "PowerSampler: period must be positive");
  SampledTrace trace;
  const double end = signal.duration_s();
  // Nothing to sample: a signal that never accrued a powered segment (empty,
  // or only zero-duration appends) yields an empty trace, not a crash.
  if (signal.power_w.empty() || end <= 0.0) return trace;
  // Index-based grid (t = i * period) rather than an accumulating float, so
  // rounding never drifts a grid point onto the closing sample; the epsilon
  // guard drops a grid point landing within ~0 of the end, which would
  // otherwise duplicate it.
  const double tol = period_s_ * 1e-9;
  for (std::size_t i = 0;; ++i) {
    const double t = static_cast<double>(i) * period_s_;
    if (t >= end - tol) break;
    double p = signal.value_at(t);
    if (noise_sigma_ > 0.0) p *= 1.0 + noise_sigma_ * rng.normal();
    trace.t_s.push_back(t);
    trace.power_w.push_back(std::max(0.0, p));
  }
  // Always close the trace at the final instant.
  double p_end = signal.value_at(end);
  if (noise_sigma_ > 0.0) p_end *= 1.0 + noise_sigma_ * rng.normal();
  trace.t_s.push_back(end);
  trace.power_w.push_back(std::max(0.0, p_end));
  return trace;
}

BatchPowerStats summarize(const SampledTrace& trace) {
  BatchPowerStats stats;
  stats.median_power_w = median(trace.power_w);
  stats.energy_j = trapezoid_integral(trace.t_s, trace.power_w);
  return stats;
}

}  // namespace orinsim::telemetry
