#include "telemetry/run_report.h"

#include "core/error.h"

namespace orinsim::telemetry {

void RunAggregator::add(const RunMetrics& run) { runs_.push_back(run); }

std::size_t RunAggregator::measured_count() const {
  return runs_.size() > warmup_runs_ ? runs_.size() - warmup_runs_ : 0;
}

std::vector<RunMetrics> RunAggregator::measured() const {
  if (runs_.size() <= warmup_runs_) return {};
  return std::vector<RunMetrics>(runs_.begin() + static_cast<std::ptrdiff_t>(warmup_runs_),
                                 runs_.end());
}

RunMetrics RunAggregator::mean() const {
  const auto runs = measured();
  ORINSIM_CHECK(!runs.empty(), "RunAggregator: no measured runs");
  RunMetrics m;
  for (const auto& r : runs) {
    m.latency_s += r.latency_s;
    m.throughput_tps += r.throughput_tps;
    m.median_power_w += r.median_power_w;
    m.energy_j += r.energy_j;
    m.energy_per_token_j += r.energy_per_token_j;
  }
  const double n = static_cast<double>(runs.size());
  m.latency_s /= n;
  m.throughput_tps /= n;
  m.median_power_w /= n;
  m.energy_j /= n;
  m.energy_per_token_j /= n;
  return m;
}

double RunAggregator::latency_cv() const {
  const auto runs = measured();
  if (runs.size() < 2) return 0.0;
  std::vector<double> lat;
  lat.reserve(runs.size());
  for (const auto& r : runs) lat.push_back(r.latency_s);
  const double m = orinsim::mean(lat);
  return m > 0.0 ? stddev(lat) / m : 0.0;
}

}  // namespace orinsim::telemetry
