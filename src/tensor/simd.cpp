#include "tensor/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/error.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define ORINSIM_SIMD_X86 1
#include <immintrin.h>
#else
#define ORINSIM_SIMD_X86 0
#endif

namespace orinsim::simd {

namespace {

bool cpu_has_avx2_fma() {
#if ORINSIM_SIMD_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Level resolve_from_env() {
  const char* env = std::getenv("ORINSIM_KERNELS");
  const std::string v = env == nullptr ? "" : env;
  if (v == "scalar") return Level::kScalar;
  if (v == "native") {
    ORINSIM_CHECK(cpu_has_avx2_fma(), "ORINSIM_KERNELS=native but CPU lacks AVX2/FMA");
    return Level::kNative;
  }
  ORINSIM_CHECK(v.empty(), "ORINSIM_KERNELS must be 'scalar', 'native', or unset");
  return cpu_has_avx2_fma() ? Level::kNative : Level::kScalar;
}

std::atomic<Level>& level_storage() {
  static std::atomic<Level> level{resolve_from_env()};
  return level;
}

// ---------------------------------------------------------------------------
// Scalar reference kernels. These loops ARE the determinism contract: they
// match the accumulation order of the original kernels::dot / matvec code.

float dot_f32_scalar(const float* a, const float* b, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

std::int64_t dot_i8_scalar(const std::int8_t* a, const std::int8_t* b, std::size_t n) {
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<std::int64_t>(a[i]) * static_cast<std::int64_t>(b[i]);
  }
  return acc;
}

#if ORINSIM_SIMD_X86
// ---------------------------------------------------------------------------
// AVX2/FMA kernels. Per-function target attributes keep the rest of the
// binary free of AVX instructions, so auto-dispatch is safe on older CPUs.

__attribute__((target("avx2,fma"))) float dot_f32_avx2(const float* a, const float* b,
                                                       std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
  }
  acc0 = _mm256_add_ps(acc0, acc1);
  __m128 lo = _mm256_castps256_ps128(acc0);
  __m128 hi = _mm256_extractf128_ps(acc0, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 0x55));
  float acc = _mm_cvtss_f32(lo);
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

// u8×s8 trick: maddubs requires one unsigned operand, so move the sign of a
// onto b (abs(a) * sign(b, a) == a * b element-wise). Pair sums fit i16:
// 2 * 127 * 127 = 32258 < 32767. i32 lanes are flushed to i64 every
// kFlushIters iterations; each madd lane is <= 2 * 32258 = 64516, so the i32
// bound 2^31 / 64516 ~= 33k iterations is never approached.
__attribute__((target("avx2"))) std::int64_t dot_i8_avx2(const std::int8_t* a,
                                                         const std::int8_t* b, std::size_t n) {
  constexpr std::size_t kFlushIters = 16384;
  const __m256i ones = _mm256_set1_epi16(1);
  std::int64_t total = 0;
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  std::size_t iters_since_flush = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i abs_a = _mm256_abs_epi8(va);
    const __m256i sgn_b = _mm256_sign_epi8(vb, va);
    const __m256i pairs = _mm256_maddubs_epi16(abs_a, sgn_b);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, ones));
    if (++iters_since_flush == kFlushIters) {
      alignas(32) std::int32_t lanes[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
      for (std::int32_t lane : lanes) total += lane;
      acc = _mm256_setzero_si256();
      iters_since_flush = 0;
    }
  }
  alignas(32) std::int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  for (std::int32_t lane : lanes) total += lane;
  for (; i < n; ++i) {
    total += static_cast<std::int64_t>(a[i]) * static_cast<std::int64_t>(b[i]);
  }
  return total;
}

// One pass over a weight row serves 8 tokens: 8 ymm accumulators + 1 weight
// load per 8 input columns turns the memory-bound matvec sweep into a
// compute-bound block. Tail tokens fall back to the single-vector dot.
__attribute__((target("avx2,fma"))) void gemm_nt_row_avx2(const float* x, const float* w_row,
                                                          float* y, std::size_t tokens,
                                                          std::size_t k, std::size_t rows,
                                                          std::size_t r) {
  std::size_t t0 = 0;
  for (; t0 + 8 <= tokens; t0 += 8) {
    __m256 acc[8];
    for (auto& v : acc) v = _mm256_setzero_ps();
    std::size_t c = 0;
    for (; c + 8 <= k; c += 8) {
      const __m256 wv = _mm256_loadu_ps(w_row + c);
      for (std::size_t t = 0; t < 8; ++t) {
        acc[t] = _mm256_fmadd_ps(_mm256_loadu_ps(x + (t0 + t) * k + c), wv, acc[t]);
      }
    }
    for (std::size_t t = 0; t < 8; ++t) {
      __m128 lo = _mm256_castps256_ps128(acc[t]);
      __m128 hi = _mm256_extractf128_ps(acc[t], 1);
      lo = _mm_add_ps(lo, hi);
      lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
      lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 0x55));
      float sum = _mm_cvtss_f32(lo);
      const float* xt = x + (t0 + t) * k;
      for (std::size_t cc = c; cc < k; ++cc) sum += xt[cc] * w_row[cc];
      y[(t0 + t) * rows + r] = sum;
    }
  }
  for (; t0 < tokens; ++t0) {
    y[t0 * rows + r] = dot_f32_avx2(x + t0 * k, w_row, k);
  }
}
#endif  // ORINSIM_SIMD_X86

}  // namespace

Level active_level() { return level_storage().load(std::memory_order_relaxed); }

bool native_available() { return cpu_has_avx2_fma(); }

void set_level(Level level) {
  if (level == Level::kNative) {
    ORINSIM_CHECK(cpu_has_avx2_fma(), "set_level(kNative): CPU lacks AVX2/FMA");
  }
  level_storage().store(level, std::memory_order_relaxed);
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kNative: return "native";
  }
  return "?";
}

float dot_f32(const float* a, const float* b, std::size_t n) {
#if ORINSIM_SIMD_X86
  if (active_level() == Level::kNative) return dot_f32_avx2(a, b, n);
#endif
  return dot_f32_scalar(a, b, n);
}

std::int64_t dot_i8(const std::int8_t* a, const std::int8_t* b, std::size_t n) {
#if ORINSIM_SIMD_X86
  if (active_level() == Level::kNative) return dot_i8_avx2(a, b, n);
#endif
  return dot_i8_scalar(a, b, n);
}

void gemm_nt_f32(const float* x, const float* w, float* y, std::size_t tokens, std::size_t k,
                 std::size_t rows) {
#if ORINSIM_SIMD_X86
  if (active_level() == Level::kNative) {
#pragma omp parallel for if (rows >= 64)
    for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(rows); ++r) {
      gemm_nt_row_avx2(x, w + static_cast<std::size_t>(r) * k, y, tokens, k, rows,
                       static_cast<std::size_t>(r));
    }
    return;
  }
#endif
  // Scalar: each output entry is the exact dot_f32_scalar float sequence, so
  // chunked projections match token-at-a-time matvecs bit-for-bit.
#pragma omp parallel for if (rows >= 64)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(rows); ++r) {
    const float* wr = w + static_cast<std::size_t>(r) * k;
    for (std::size_t t = 0; t < tokens; ++t) {
      y[t * rows + static_cast<std::size_t>(r)] = dot_f32_scalar(x + t * k, wr, k);
    }
  }
}

}  // namespace orinsim::simd
