#include "tensor/simd.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/error.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define ORINSIM_SIMD_X86 1
#include <immintrin.h>
#else
#define ORINSIM_SIMD_X86 0
#endif

namespace orinsim::simd {

namespace {

bool cpu_has_avx2_fma() {
#if ORINSIM_SIMD_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

std::atomic<Level>& level_storage() {
  static std::atomic<Level> level{resolve_level(std::getenv("ORINSIM_KERNELS"))};
  return level;
}

// ---------------------------------------------------------------------------
// Scalar reference kernels. These loops ARE the determinism contract: they
// match the accumulation order of the original kernels::dot / matvec code.

float dot_f32_scalar(const float* a, const float* b, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

std::int64_t dot_i8_scalar(const std::int8_t* a, const std::int8_t* b, std::size_t n) {
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<std::int64_t>(a[i]) * static_cast<std::int64_t>(b[i]);
  }
  return acc;
}

#if ORINSIM_SIMD_X86
// ---------------------------------------------------------------------------
// AVX2/FMA kernels. Per-function target attributes keep the rest of the
// binary free of AVX instructions, so auto-dispatch is safe on older CPUs.

__attribute__((target("avx2,fma"))) float dot_f32_avx2(const float* a, const float* b,
                                                       std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
  }
  acc0 = _mm256_add_ps(acc0, acc1);
  __m128 lo = _mm256_castps256_ps128(acc0);
  __m128 hi = _mm256_extractf128_ps(acc0, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 0x55));
  float acc = _mm_cvtss_f32(lo);
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

// Four activation columns per weight pass. Each column's accumulator pair,
// reduction and tail are EXACTLY dot_f32_avx2's sequence — only the weight
// loads are shared — so out[t] is bit-identical to dot_f32_avx2(w, x_t, n).
__attribute__((target("avx2,fma"))) void dot_f32_multi4_avx2(const float* w, const float* x,
                                                             std::size_t x_stride,
                                                             std::size_t n, float* out) {
  __m256 acc0[4];
  __m256 acc1[4];
  for (int t = 0; t < 4; ++t) {
    acc0[t] = _mm256_setzero_ps();
    acc1[t] = _mm256_setzero_ps();
  }
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 w0 = _mm256_loadu_ps(w + i);
    const __m256 w1 = _mm256_loadu_ps(w + i + 8);
    for (int t = 0; t < 4; ++t) {
      const float* xt = x + static_cast<std::size_t>(t) * x_stride;
      acc0[t] = _mm256_fmadd_ps(w0, _mm256_loadu_ps(xt + i), acc0[t]);
      acc1[t] = _mm256_fmadd_ps(w1, _mm256_loadu_ps(xt + i + 8), acc1[t]);
    }
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 w0 = _mm256_loadu_ps(w + i);
    for (int t = 0; t < 4; ++t) {
      const float* xt = x + static_cast<std::size_t>(t) * x_stride;
      acc0[t] = _mm256_fmadd_ps(w0, _mm256_loadu_ps(xt + i), acc0[t]);
    }
  }
  for (int t = 0; t < 4; ++t) {
    const float* xt = x + static_cast<std::size_t>(t) * x_stride;
    __m256 a = _mm256_add_ps(acc0[t], acc1[t]);
    __m128 lo = _mm256_castps256_ps128(a);
    __m128 hi = _mm256_extractf128_ps(a, 1);
    lo = _mm_add_ps(lo, hi);
    lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
    lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 0x55));
    float acc = _mm_cvtss_f32(lo);
    for (std::size_t j = i; j < n; ++j) acc += w[j] * xt[j];
    out[t] = acc;
  }
}

// u8×s8 trick: maddubs requires one unsigned operand, so move the sign of a
// onto b (abs(a) * sign(b, a) == a * b element-wise). Pair sums fit i16:
// 2 * 127 * 127 = 32258 < 32767. i32 lanes are flushed to i64 every
// kFlushIters iterations; each madd lane is <= 2 * 32258 = 64516, so the i32
// bound 2^31 / 64516 ~= 33k iterations is never approached.
__attribute__((target("avx2"))) std::int64_t dot_i8_avx2(const std::int8_t* a,
                                                         const std::int8_t* b, std::size_t n) {
  constexpr std::size_t kFlushIters = 16384;
  const __m256i ones = _mm256_set1_epi16(1);
  std::int64_t total = 0;
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  std::size_t iters_since_flush = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i abs_a = _mm256_abs_epi8(va);
    const __m256i sgn_b = _mm256_sign_epi8(vb, va);
    const __m256i pairs = _mm256_maddubs_epi16(abs_a, sgn_b);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, ones));
    if (++iters_since_flush == kFlushIters) {
      alignas(32) std::int32_t lanes[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
      for (std::int32_t lane : lanes) total += lane;
      acc = _mm256_setzero_si256();
      iters_since_flush = 0;
    }
  }
  alignas(32) std::int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  for (std::int32_t lane : lanes) total += lane;
  for (; i < n; ++i) {
    total += static_cast<std::int64_t>(a[i]) * static_cast<std::int64_t>(b[i]);
  }
  return total;
}

// Four-column int8 dot, one weight stream. Integer math is exact, so the
// i64 results equal per-column dot_i8 regardless of accumulation order.
__attribute__((target("avx2"))) void dot_i8_multi4_avx2(const std::int8_t* w,
                                                        const std::int8_t* x,
                                                        std::size_t x_stride, std::size_t n,
                                                        std::int64_t* out) {
  constexpr std::size_t kFlushIters = 16384;
  const __m256i ones = _mm256_set1_epi16(1);
  std::int64_t total[4] = {0, 0, 0, 0};
  __m256i acc[4];
  for (auto& v : acc) v = _mm256_setzero_si256();
  std::size_t i = 0;
  std::size_t iters_since_flush = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i vw = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    const __m256i abs_w = _mm256_abs_epi8(vw);
    for (int t = 0; t < 4; ++t) {
      const __m256i vx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(x + static_cast<std::size_t>(t) * x_stride + i));
      const __m256i sgn_x = _mm256_sign_epi8(vx, vw);
      const __m256i pairs = _mm256_maddubs_epi16(abs_w, sgn_x);
      acc[t] = _mm256_add_epi32(acc[t], _mm256_madd_epi16(pairs, ones));
    }
    if (++iters_since_flush == kFlushIters) {
      for (int t = 0; t < 4; ++t) {
        alignas(32) std::int32_t lanes[8];
        _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc[t]);
        for (std::int32_t lane : lanes) total[t] += lane;
        acc[t] = _mm256_setzero_si256();
      }
      iters_since_flush = 0;
    }
  }
  for (int t = 0; t < 4; ++t) {
    alignas(32) std::int32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc[t]);
    for (std::int32_t lane : lanes) total[t] += lane;
    const std::int8_t* xt = x + static_cast<std::size_t>(t) * x_stride;
    for (std::size_t j = i; j < n; ++j) {
      total[t] += static_cast<std::int64_t>(w[j]) * static_cast<std::int64_t>(xt[j]);
    }
    out[t] = total[t];
  }
}

// Packed-int4 kernel core, up to 4 columns. Register layout per block:
//
//   w16   = 16 packed bytes          [b0 .. b15]
//   lo    = w16 & 0x0F               codes  0..15 (+8 biased)
//   hi    = (w16 >> 4) & 0x0F        codes 16..31 (+8 biased)
//   w8    = set_m128(hi, lo) - 8     32 signed codes in activation order
//   pairs = maddubs(|w8|, sign(x, w8))   16 × i16 pair sums   (<= 2032)
//   isum  = madd(pairs, 1)               8 × i32 quad sums    (<= 4064)
//   facc  = fmadd(cvt_ps(isum), scale_b, facc)   8 float lanes per column
//
// Column t's facc chain touches blocks in order and is reduced with the same
// horizontal-sum sequence as dot_f32_avx2 — independent of how many other
// columns share the weight unpack, and mirrored exactly (std::fma, same lane
// grouping, same hsum order) by dot_i4_i8_multi_ref.
__attribute__((target("avx2,fma"))) void dot_i4_i8_multi_avx2(
    const std::uint8_t* w_packed, const float* scales, std::size_t blocks,
    const std::int8_t* x, std::size_t x_stride, std::size_t n_cols, float* out) {
  const __m256i ones = _mm256_set1_epi16(1);
  const __m128i nib_mask = _mm_set1_epi8(0x0F);
  const __m256i bias = _mm256_set1_epi8(8);
  // 8-column tiles: one nibble-unpack serves 8 lanes (a full decode batch in
  // one pass). Each lane keeps its own independent fma chain, so tile width
  // never changes a lane's result — only how many lanes share the unpack.
  for (std::size_t t0 = 0; t0 < n_cols; t0 += 8) {
    const std::size_t tc = n_cols - t0 < 8 ? n_cols - t0 : 8;
    __m256 facc[8];
    for (auto& v : facc) v = _mm256_setzero_ps();
    for (std::size_t b = 0; b < blocks; ++b) {
      const __m128i w16 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(w_packed + b * kInt4KernelBlockBytes));
      const __m128i lo = _mm_and_si128(w16, nib_mask);
      const __m128i hi = _mm_and_si128(_mm_srli_epi16(w16, 4), nib_mask);
      const __m256i w8 = _mm256_sub_epi8(_mm256_set_m128i(hi, lo), bias);
      const __m256i abs_w = _mm256_abs_epi8(w8);
      const __m256 scale = _mm256_broadcast_ss(scales + b);
      for (std::size_t t = 0; t < tc; ++t) {
        const __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
            x + (t0 + t) * x_stride + b * kInt4KernelBlock));
        const __m256i sgn_x = _mm256_sign_epi8(vx, w8);
        const __m256i pairs = _mm256_maddubs_epi16(abs_w, sgn_x);
        const __m256i isum = _mm256_madd_epi16(pairs, ones);
        facc[t] = _mm256_fmadd_ps(_mm256_cvtepi32_ps(isum), scale, facc[t]);
      }
    }
    for (std::size_t t = 0; t < tc; ++t) {
      __m128 lo = _mm256_castps256_ps128(facc[t]);
      __m128 hi = _mm256_extractf128_ps(facc[t], 1);
      lo = _mm_add_ps(lo, hi);
      lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
      lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 0x55));
      out[t0 + t] = _mm_cvtss_f32(lo);
    }
  }
}

// One pass over a weight row serves 8 tokens: 8 ymm accumulators + 1 weight
// load per 8 input columns turns the memory-bound matvec sweep into a
// compute-bound block. Tail tokens fall back to the single-vector dot.
__attribute__((target("avx2,fma"))) void gemm_nt_row_avx2(const float* x, const float* w_row,
                                                          float* y, std::size_t tokens,
                                                          std::size_t k, std::size_t rows,
                                                          std::size_t r) {
  std::size_t t0 = 0;
  for (; t0 + 8 <= tokens; t0 += 8) {
    __m256 acc[8];
    for (auto& v : acc) v = _mm256_setzero_ps();
    std::size_t c = 0;
    for (; c + 8 <= k; c += 8) {
      const __m256 wv = _mm256_loadu_ps(w_row + c);
      for (std::size_t t = 0; t < 8; ++t) {
        acc[t] = _mm256_fmadd_ps(_mm256_loadu_ps(x + (t0 + t) * k + c), wv, acc[t]);
      }
    }
    for (std::size_t t = 0; t < 8; ++t) {
      __m128 lo = _mm256_castps256_ps128(acc[t]);
      __m128 hi = _mm256_extractf128_ps(acc[t], 1);
      lo = _mm_add_ps(lo, hi);
      lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
      lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 0x55));
      float sum = _mm_cvtss_f32(lo);
      const float* xt = x + (t0 + t) * k;
      for (std::size_t cc = c; cc < k; ++cc) sum += xt[cc] * w_row[cc];
      y[(t0 + t) * rows + r] = sum;
    }
  }
  for (; t0 < tokens; ++t0) {
    y[t0 * rows + r] = dot_f32_avx2(x + t0 * k, w_row, k);
  }
}

// Roofline probe: 8 independent 8-lane fma chains, values kept near 1.0 so
// the loop never denormalizes. The sink store defeats dead-code elimination.
__attribute__((target("avx2,fma"))) double fma_probe_flops_avx2(std::size_t iters) {
  __m256 acc[8];
  for (int c = 0; c < 8; ++c) acc[c] = _mm256_set1_ps(1.0f + 0.001f * static_cast<float>(c));
  const __m256 a = _mm256_set1_ps(1.0000001f);
  const __m256 b = _mm256_set1_ps(-0.0000001f);
  for (std::size_t i = 0; i < iters; ++i) {
    for (int c = 0; c < 8; ++c) acc[c] = _mm256_fmadd_ps(acc[c], a, b);
  }
  alignas(32) float sink[8];
  __m256 total = acc[0];
  for (int c = 1; c < 8; ++c) total = _mm256_add_ps(total, acc[c]);
  _mm256_store_ps(sink, total);
  volatile float keep = sink[0];
  (void)keep;
  return static_cast<double>(iters) * 8.0 * 8.0 * 2.0;
}
#endif  // ORINSIM_SIMD_X86

}  // namespace

Level resolve_level(const char* value) {
  const std::string v = value == nullptr ? "" : value;
  if (v == "scalar") return Level::kScalar;
  if (v == "native") {
    ORINSIM_CHECK(cpu_has_avx2_fma(), "ORINSIM_KERNELS=native but CPU lacks AVX2/FMA");
    return Level::kNative;
  }
  if (!v.empty()) {
    std::fprintf(stderr,
                 "orinsim: ignoring unknown ORINSIM_KERNELS value '%s' "
                 "(accepted: 'scalar', 'native', or unset for auto-detection)\n",
                 v.c_str());
  }
  return cpu_has_avx2_fma() ? Level::kNative : Level::kScalar;
}

Level init() { return level_storage().load(std::memory_order_relaxed); }

Level active_level() { return level_storage().load(std::memory_order_relaxed); }

bool native_available() { return cpu_has_avx2_fma(); }

void set_level(Level level) {
  if (level == Level::kNative) {
    ORINSIM_CHECK(cpu_has_avx2_fma(), "set_level(kNative): CPU lacks AVX2/FMA");
  }
  level_storage().store(level, std::memory_order_relaxed);
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kNative: return "native";
  }
  return "?";
}

float dot_f32(const float* a, const float* b, std::size_t n) {
#if ORINSIM_SIMD_X86
  if (active_level() == Level::kNative) return dot_f32_avx2(a, b, n);
#endif
  return dot_f32_scalar(a, b, n);
}

std::int64_t dot_i8(const std::int8_t* a, const std::int8_t* b, std::size_t n) {
#if ORINSIM_SIMD_X86
  if (active_level() == Level::kNative) return dot_i8_avx2(a, b, n);
#endif
  return dot_i8_scalar(a, b, n);
}

void dot_f32_multi(const float* w, const float* x, std::size_t x_stride, std::size_t n_cols,
                   std::size_t n, float* out) {
#if ORINSIM_SIMD_X86
  if (active_level() == Level::kNative) {
    std::size_t t = 0;
    for (; t + 4 <= n_cols; t += 4) {
      dot_f32_multi4_avx2(w, x + t * x_stride, x_stride, n, out + t);
    }
    // Remainder columns: the single-column kernel, which the 4-wide tile
    // matches per column by construction.
    for (; t < n_cols; ++t) out[t] = dot_f32_avx2(w, x + t * x_stride, n);
    return;
  }
#endif
  for (std::size_t t = 0; t < n_cols; ++t) out[t] = dot_f32_scalar(w, x + t * x_stride, n);
}

void dot_i8_multi(const std::int8_t* w, const std::int8_t* x, std::size_t x_stride,
                  std::size_t n_cols, std::size_t n, std::int64_t* out) {
#if ORINSIM_SIMD_X86
  if (active_level() == Level::kNative) {
    std::size_t t = 0;
    for (; t + 4 <= n_cols; t += 4) {
      dot_i8_multi4_avx2(w, x + t * x_stride, x_stride, n, out + t);
    }
    for (; t < n_cols; ++t) out[t] = dot_i8_avx2(w, x + t * x_stride, n);
    return;
  }
#endif
  for (std::size_t t = 0; t < n_cols; ++t) out[t] = dot_i8_scalar(w, x + t * x_stride, n);
}

void dot_i4_i8_multi_ref(const std::uint8_t* w_packed, const float* scales, std::size_t blocks,
                         const std::int8_t* x, std::size_t x_stride, std::size_t n_cols,
                         float* out) {
  for (std::size_t t = 0; t < n_cols; ++t) {
    const std::int8_t* xt = x + t * x_stride;
    // 8 float lanes, exactly the AVX2 kernel's i32 quad-sum grouping: lane l
    // of block b covers codes 4l .. 4l+3 in activation order.
    float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::uint8_t* wb = w_packed + b * kInt4KernelBlockBytes;
      const std::int8_t* xb = xt + b * kInt4KernelBlock;
      for (int l = 0; l < 8; ++l) {
        std::int32_t isum = 0;
        for (int j = 4 * l; j < 4 * l + 4; ++j) {
          const int code = j < 16 ? (wb[j] & 0x0F) - 8 : (wb[j - 16] >> 4) - 8;
          isum += code * static_cast<std::int32_t>(xb[j]);
        }
        lanes[l] = std::fma(static_cast<float>(isum), scales[b], lanes[l]);
      }
    }
    // dot_f32_avx2's horizontal-sum order: (l0+l4)+(l2+l6) then (l1+l5)+(l3+l7).
    const float q0 = lanes[0] + lanes[4];
    const float q1 = lanes[1] + lanes[5];
    const float q2 = lanes[2] + lanes[6];
    const float q3 = lanes[3] + lanes[7];
    out[t] = (q0 + q2) + (q1 + q3);
  }
}

void dot_i4_i8_multi(const std::uint8_t* w_packed, const float* scales, std::size_t blocks,
                     const std::int8_t* x, std::size_t x_stride, std::size_t n_cols,
                     float* out) {
#if ORINSIM_SIMD_X86
  if (cpu_has_avx2_fma()) {
    dot_i4_i8_multi_avx2(w_packed, scales, blocks, x, x_stride, n_cols, out);
    return;
  }
#endif
  dot_i4_i8_multi_ref(w_packed, scales, blocks, x, x_stride, n_cols, out);
}

void gemm_nt_f32(const float* x, const float* w, float* y, std::size_t tokens, std::size_t k,
                 std::size_t rows) {
#if ORINSIM_SIMD_X86
  if (active_level() == Level::kNative) {
#pragma omp parallel for if (rows >= 64)
    for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(rows); ++r) {
      gemm_nt_row_avx2(x, w + static_cast<std::size_t>(r) * k, y, tokens, k, rows,
                       static_cast<std::size_t>(r));
    }
    return;
  }
#endif
  // Scalar: each output entry is the exact dot_f32_scalar float sequence, so
  // chunked projections match token-at-a-time matvecs bit-for-bit.
#pragma omp parallel for if (rows >= 64)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(rows); ++r) {
    const float* wr = w + static_cast<std::size_t>(r) * k;
    for (std::size_t t = 0; t < tokens; ++t) {
      y[t * rows + static_cast<std::size_t>(r)] = dot_f32_scalar(x + t * k, wr, k);
    }
  }
}

double fma_probe_flops(std::size_t iters) {
#if ORINSIM_SIMD_X86
  if (cpu_has_avx2_fma()) return fma_probe_flops_avx2(iters);
#endif
  float acc[8];
  for (int c = 0; c < 8; ++c) acc[c] = 1.0f + 0.001f * static_cast<float>(c);
  for (std::size_t i = 0; i < iters; ++i) {
    for (int c = 0; c < 8; ++c) acc[c] = std::fma(acc[c], 1.0000001f, -0.0000001f);
  }
  volatile float keep = acc[0] + acc[1] + acc[2] + acc[3] + acc[4] + acc[5] + acc[6] + acc[7];
  (void)keep;
  return static_cast<double>(iters) * 8.0 * 2.0;
}

}  // namespace orinsim::simd
