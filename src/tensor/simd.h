// Runtime-dispatched SIMD kernels.
//
// Every kernel here has two implementations: a scalar reference (the exact
// accumulation order the engine has always used — bit-for-bit reproducible on
// any host) and, on x86-64, an AVX2/FMA variant compiled with per-function
// target attributes so the translation unit builds without global -march
// flags. The active implementation is chosen once, at first use:
//
//   ORINSIM_KERNELS=scalar   force the scalar reference
//   ORINSIM_KERNELS=native   force SIMD (fails fast if the CPU lacks AVX2)
//   unset / empty            auto: native when the CPU supports AVX2+FMA
//   anything else            warning to stderr, then auto (see init())
//
// Determinism contract: `scalar` is the bit-exact reference; `native` is
// numerically equivalent within FMA/reassociation tolerance for fp32 kernels
// and bit-exact for integer kernels (dot_i8 does the same exact integer math
// in a different order).
//
// Multi-column ("lane-batched") kernels: decode is memory-bound, so the
// `*_multi` entry points stream one weight row against N activation columns.
// Their contract is *composition independence*: column t's result is
// bit-identical to the corresponding single-column kernel at the active
// level, for every N and every position within the batch. This is what lets
// `Model::generate` batch whichever lanes happen to be active without
// changing any lane's tokens (and is load-bearing for serial-vs-pooled
// decode bit-equality).
#pragma once

#include <cstddef>
#include <cstdint>

namespace orinsim::simd {

enum class Level {
  kScalar,  // portable reference, bit-exact accumulation order
  kNative,  // AVX2/FMA
};

// Currently active level (env-resolved on first call, set_level thereafter).
Level active_level();

// Explicit idempotent initialization: resolves ORINSIM_KERNELS (validating
// the value — unknown strings warn on stderr and fall back to auto) and
// returns the resulting level. Lazily invoked by active_level() otherwise.
Level init();

// Parse one ORINSIM_KERNELS value ("scalar" / "native" / empty / nullptr for
// auto). Unknown values print a one-line stderr warning listing the accepted
// values and resolve to auto-detection. Pure apart from the warning; exposed
// so tests can exercise the validation without re-resolving the process env.
Level resolve_level(const char* value);

// True when this CPU can run the kNative kernels (AVX2 + FMA).
bool native_available();

// Override the active level at runtime (benches/tests toggle both paths in
// one process). Setting kNative on a CPU without AVX2 is a fatal error.
void set_level(Level level);

const char* level_name(Level level);

// Dot product, fp32 accumulate. Scalar: acc += a[i]*b[i] in index order.
float dot_f32(const float* a, const float* b, std::size_t n);

// Dot product over int8 codes, exact i64 result (both levels bit-identical).
// Domain: codes in [-127, 127] — the absmax quantizers' clamp range. -128 is
// outside the contract (the AVX2 sign trick would wrap on abs(-128)).
std::int64_t dot_i8(const std::int8_t* a, const std::int8_t* b, std::size_t n);

// Multi-column fp32 dot: out[t] = dot(w, x + t*x_stride) for t < n_cols.
// Each column is the EXACT float sequence of dot_f32 at the active level
// (the AVX2 path replicates dot_f32_avx2's unroll, reduction and tail per
// column while sharing the weight loads), so batching lanes never changes a
// lane's result — at kScalar AND kNative.
void dot_f32_multi(const float* w, const float* x, std::size_t x_stride,
                   std::size_t n_cols, std::size_t n, float* out);

// Multi-column int8 dot: out[t] = dot_i8(w, x + t*x_stride). Exact integer
// math — bit-identical to per-column dot_i8 at both levels by construction.
void dot_i8_multi(const std::int8_t* w, const std::int8_t* x, std::size_t x_stride,
                  std::size_t n_cols, std::size_t n, std::int64_t* out);

// ---------------------------------------------------------------------------
// Packed-int4 kernel. Operates directly on the nibble-plane kernel layout
// built by quantize_block_int4 (quant/quantize.h): each 32-code block is 16
// bytes where byte j holds code[j]+8 in its low nibble and code[j+16]+8 in
// its high nibble. A vpand/vpsrlw pair therefore unpacks straight into
// activation order with no shuffles, and the +8 bias is removed with one
// vpsubb. Codes are in [-8, 7]; activations are int8 codes in [-127, 127]
// (same domain contract as dot_i8), so the maddubs u8*s8 pair sums peak at
// 2 * 8 * 127 = 2032 — far inside i16.
//
//   out[t] = sum_b float(idot(w_block_b, x_t_block_b)) * scales[b]
//
// The caller applies the activation scale. Per-column math is independent of
// n_cols (composition independence, same contract as the *_multi kernels).
// This kernel IS the int4 native path; the scalar level never calls it.

// Codes per block and packed bytes per block of the kernel layout.
inline constexpr std::size_t kInt4KernelBlock = 32;
inline constexpr std::size_t kInt4KernelBlockBytes = 16;

// Dispatching entry: AVX2 when the CPU has it, else the portable mirror.
void dot_i4_i8_multi(const std::uint8_t* w_packed, const float* scales,
                     std::size_t blocks, const std::int8_t* x, std::size_t x_stride,
                     std::size_t n_cols, float* out);

// Portable mirror of the AVX2 packed-int4 kernel: same 8 per-lane fma chains
// (std::fma — single rounding, like vfmaddps) and the same horizontal-sum
// order, so it is bit-identical to the AVX2 variant on any host. Slow;
// non-x86 fallback and test reference only.
void dot_i4_i8_multi_ref(const std::uint8_t* w_packed, const float* scales,
                         std::size_t blocks, const std::int8_t* x, std::size_t x_stride,
                         std::size_t n_cols, float* out);

// y[t, r] = dot(x[t, :], w[r, :]).  x: [tokens, k] row-major activations,
// w: [rows, k] row-major weights (the WeightMatrix layout — "nt" because w is
// used transposed), y: [tokens, rows]. Under kScalar each (t, r) entry is the
// same float sequence as dot_f32, so a chunked projection is bit-identical to
// `tokens` independent matvecs. NOTE: the kNative 8-token register-tiled
// block is composition-DEPENDENT (a token's float sequence differs between
// the 8-block and the tail path) — prefill only; decode batching goes
// through dot_f32_multi instead.
void gemm_nt_f32(const float* x, const float* w, float* y, std::size_t tokens,
                 std::size_t k, std::size_t rows);

// Roofline probe: runs `iters` iterations of 8 independent register-resident
// fused multiply-add chains (8-lane AVX2/FMA when the CPU has it, scalar
// std::fma otherwise) and returns the number of FLOPs executed. The bench
// times this to estimate per-core peak GFLOP/s for the roofline report.
double fma_probe_flops(std::size_t iters);

}  // namespace orinsim::simd
