// Runtime-dispatched SIMD kernels.
//
// Every kernel here has two implementations: a scalar reference (the exact
// accumulation order the engine has always used — bit-for-bit reproducible on
// any host) and, on x86-64, an AVX2/FMA variant compiled with per-function
// target attributes so the translation unit builds without global -march
// flags. The active implementation is chosen once, at first use:
//
//   ORINSIM_KERNELS=scalar   force the scalar reference
//   ORINSIM_KERNELS=native   force SIMD (fails fast if the CPU lacks AVX2)
//   unset / empty            auto: native when the CPU supports AVX2+FMA
//
// Determinism contract: `scalar` is the bit-exact reference; `native` is
// numerically equivalent within FMA/reassociation tolerance for fp32 kernels
// and bit-exact for integer kernels (dot_i8 does the same exact integer math
// in a different order).
#pragma once

#include <cstddef>
#include <cstdint>

namespace orinsim::simd {

enum class Level {
  kScalar,  // portable reference, bit-exact accumulation order
  kNative,  // AVX2/FMA
};

// Currently active level (env-resolved on first call, set_level thereafter).
Level active_level();

// True when this CPU can run the kNative kernels (AVX2 + FMA).
bool native_available();

// Override the active level at runtime (benches/tests toggle both paths in
// one process). Setting kNative on a CPU without AVX2 is a fatal error.
void set_level(Level level);

const char* level_name(Level level);

// Dot product, fp32 accumulate. Scalar: acc += a[i]*b[i] in index order.
float dot_f32(const float* a, const float* b, std::size_t n);

// Dot product over int8 codes, exact i64 result (both levels bit-identical).
// Domain: codes in [-127, 127] — the absmax quantizers' clamp range. -128 is
// outside the contract (the AVX2 sign trick would wrap on abs(-128)).
std::int64_t dot_i8(const std::int8_t* a, const std::int8_t* b, std::size_t n);

// y[t, r] = dot(x[t, :], w[r, :]).  x: [tokens, k] row-major activations,
// w: [rows, k] row-major weights (the WeightMatrix layout — "nt" because w is
// used transposed), y: [tokens, rows]. Under kScalar each (t, r) entry is the
// same float sequence as dot_f32, so a chunked projection is bit-identical to
// `tokens` independent matvecs.
void gemm_nt_f32(const float* x, const float* w, float* y, std::size_t tokens,
                 std::size_t k, std::size_t rows);

}  // namespace orinsim::simd
