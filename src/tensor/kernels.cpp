#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "tensor/simd.h"

namespace orinsim::kernels {

namespace {
// Rows below this threshold run serially; OpenMP fork/join costs more than it
// saves on tiny batches.
constexpr std::size_t kParallelRowThreshold = 8;
}  // namespace

void add_bias(std::span<float> x, std::span<const float> bias, std::size_t rows,
              std::size_t cols) {
  ORINSIM_CHECK(x.size() == rows * cols && bias.size() == cols, "add_bias: shape mismatch");
  for (std::size_t r = 0; r < rows; ++r) {
    float* xr = x.data() + r * cols;
    for (std::size_t c = 0; c < cols; ++c) xr[c] += bias[c];
  }
}

void add_inplace(std::span<float> y, std::span<const float> x) {
  ORINSIM_CHECK(y.size() == x.size(), "add_inplace: size mismatch");
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += x[i];
}

void scale_inplace(std::span<float> x, float factor) {
  for (auto& v : x) v *= factor;
}

void softmax_rows(std::span<float> x, std::size_t rows, std::size_t cols) {
  ORINSIM_CHECK(x.size() == rows * cols, "softmax: shape mismatch");
#pragma omp parallel for if (rows >= kParallelRowThreshold)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(rows); ++r) {
    float* xr = x.data() + static_cast<std::size_t>(r) * cols;
    float mx = xr[0];
    for (std::size_t c = 1; c < cols; ++c) mx = std::max(mx, xr[c]);
    float sum = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      xr[c] = std::exp(xr[c] - mx);
      sum += xr[c];
    }
    const float inv = 1.0f / sum;
    for (std::size_t c = 0; c < cols; ++c) xr[c] *= inv;
  }
}

void rmsnorm_rows(std::span<const float> x, std::span<const float> gain, std::span<float> y,
                  std::size_t rows, std::size_t cols, float eps) {
  ORINSIM_CHECK(x.size() == rows * cols && y.size() == x.size() && gain.size() == cols,
                "rmsnorm: shape mismatch");
#pragma omp parallel for if (rows >= kParallelRowThreshold)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(rows); ++r) {
    const float* xr = x.data() + static_cast<std::size_t>(r) * cols;
    float* yr = y.data() + static_cast<std::size_t>(r) * cols;
    double ss = 0.0;
    for (std::size_t c = 0; c < cols; ++c) ss += static_cast<double>(xr[c]) * xr[c];
    const float inv_rms =
        1.0f / std::sqrt(static_cast<float>(ss / static_cast<double>(cols)) + eps);
    for (std::size_t c = 0; c < cols; ++c) yr[c] = xr[c] * inv_rms * gain[c];
  }
}

void layernorm_rows(std::span<const float> x, std::span<const float> gain,
                    std::span<const float> bias, std::span<float> y, std::size_t rows,
                    std::size_t cols, float eps) {
  ORINSIM_CHECK(x.size() == rows * cols && y.size() == x.size() && gain.size() == cols &&
                    bias.size() == cols,
                "layernorm: shape mismatch");
#pragma omp parallel for if (rows >= kParallelRowThreshold)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(rows); ++r) {
    const float* xr = x.data() + static_cast<std::size_t>(r) * cols;
    float* yr = y.data() + static_cast<std::size_t>(r) * cols;
    double sum = 0.0;
    for (std::size_t c = 0; c < cols; ++c) sum += xr[c];
    const double m = sum / static_cast<double>(cols);
    double var = 0.0;
    for (std::size_t c = 0; c < cols; ++c) var += (xr[c] - m) * (xr[c] - m);
    var /= static_cast<double>(cols);
    const float inv = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    for (std::size_t c = 0; c < cols; ++c) {
      yr[c] = (xr[c] - static_cast<float>(m)) * inv * gain[c] + bias[c];
    }
  }
}

void silu_inplace(std::span<float> x) {
  for (auto& v : x) v = v / (1.0f + std::exp(-v));
}

void gelu_inplace(std::span<float> x) {
  constexpr float kSqrt2OverPi = 0.7978845608f;
  for (auto& v : x) {
    const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
    v = 0.5f * v * (1.0f + std::tanh(inner));
  }
}

void swiglu(std::span<const float> gate, std::span<const float> up, std::span<float> out) {
  ORINSIM_CHECK(gate.size() == up.size() && out.size() == gate.size(), "swiglu: size mismatch");
  for (std::size_t i = 0; i < out.size(); ++i) {
    const float g = gate[i] / (1.0f + std::exp(-gate[i]));
    out[i] = g * up[i];
  }
}

void rope_inplace(std::span<float> qk, std::size_t heads, std::size_t head_dim,
                  std::size_t pos, float theta_base) {
  ORINSIM_CHECK(qk.size() == heads * head_dim, "rope: shape mismatch");
  ORINSIM_CHECK(head_dim % 2 == 0, "rope: head_dim must be even");
  for (std::size_t h = 0; h < heads; ++h) {
    float* v = qk.data() + h * head_dim;
    for (std::size_t i = 0; i < head_dim; i += 2) {
      const float freq =
          std::pow(theta_base, -static_cast<float>(i) / static_cast<float>(head_dim));
      const float angle = static_cast<float>(pos) * freq;
      const float cs = std::cos(angle);
      const float sn = std::sin(angle);
      const float x0 = v[i];
      const float x1 = v[i + 1];
      v[i] = x0 * cs - x1 * sn;
      v[i + 1] = x0 * sn + x1 * cs;
    }
  }
}

RopeTable::RopeTable(std::size_t max_seq, std::size_t head_dim, float theta_base)
    : max_seq_(max_seq), head_dim_(head_dim) {
  ORINSIM_CHECK(head_dim % 2 == 0, "rope: head_dim must be even");
  const std::size_t half = head_dim / 2;
  cos_.resize(max_seq * half);
  sin_.resize(max_seq * half);
  for (std::size_t pos = 0; pos < max_seq; ++pos) {
    for (std::size_t i = 0; i < head_dim; i += 2) {
      // Identical expressions to rope_inplace so table lookups are bit-exact.
      const float freq =
          std::pow(theta_base, -static_cast<float>(i) / static_cast<float>(head_dim));
      const float angle = static_cast<float>(pos) * freq;
      cos_[pos * half + i / 2] = std::cos(angle);
      sin_[pos * half + i / 2] = std::sin(angle);
    }
  }
}

void RopeTable::apply(std::span<float> qk, std::size_t heads, std::size_t head_dim,
                      std::size_t pos) const {
  ORINSIM_CHECK(qk.size() == heads * head_dim, "rope: shape mismatch");
  ORINSIM_CHECK(head_dim == head_dim_ && pos < max_seq_, "rope table: out of range");
  const std::size_t half = head_dim / 2;
  const float* cs_row = cos_.data() + pos * half;
  const float* sn_row = sin_.data() + pos * half;
  for (std::size_t h = 0; h < heads; ++h) {
    float* v = qk.data() + h * head_dim;
    for (std::size_t i = 0; i < head_dim; i += 2) {
      const float cs = cs_row[i / 2];
      const float sn = sn_row[i / 2];
      const float x0 = v[i];
      const float x1 = v[i + 1];
      v[i] = x0 * cs - x1 * sn;
      v[i + 1] = x0 * sn + x1 * cs;
    }
  }
}

float dot(std::span<const float> a, std::span<const float> b) {
  ORINSIM_DCHECK(a.size() == b.size(), "dot: size mismatch");
  return simd::dot_f32(a.data(), b.data(), a.size());
}

void matvec(std::span<const float> a, std::span<const float> x, std::span<float> out,
            std::size_t rows, std::size_t cols) {
  ORINSIM_CHECK(a.size() == rows * cols && x.size() == cols && out.size() == rows,
                "matvec: shape mismatch");
#pragma omp parallel for if (rows >= 64)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(rows); ++r) {
    const float* ar = a.data() + static_cast<std::size_t>(r) * cols;
    out[static_cast<std::size_t>(r)] = simd::dot_f32(ar, x.data(), cols);
  }
}

void matvec_multi(std::span<const float> a, std::span<const float> x, std::span<float> out,
                  std::size_t rows, std::size_t cols, std::size_t lanes) {
  ORINSIM_CHECK(a.size() == rows * cols && x.size() == lanes * cols &&
                    out.size() == lanes * rows,
                "matvec_multi: shape mismatch");
#pragma omp parallel if (rows >= 64)
  {
    std::vector<float> tmp(lanes);
#pragma omp for
    for (std::ptrdiff_t rs = 0; rs < static_cast<std::ptrdiff_t>(rows); ++rs) {
      const auto r = static_cast<std::size_t>(rs);
      const float* ar = a.data() + r * cols;
      simd::dot_f32_multi(ar, x.data(), cols, lanes, cols, tmp.data());
      for (std::size_t t = 0; t < lanes; ++t) out[t * rows + r] = tmp[t];
    }
  }
}

void gemm(std::span<const float> a, std::span<const float> b, std::span<float> c,
          std::size_t m, std::size_t k, std::size_t n) {
  ORINSIM_CHECK(a.size() == m * k && b.size() == k * n && c.size() == m * n,
                "gemm: shape mismatch");
  std::fill(c.begin(), c.end(), 0.0f);
  constexpr std::size_t kBlock = 64;
#pragma omp parallel for if (m >= kParallelRowThreshold)
  for (std::ptrdiff_t i0s = 0; i0s < static_cast<std::ptrdiff_t>(m); i0s += kBlock) {
    const std::size_t i0 = static_cast<std::size_t>(i0s);
    const std::size_t i_end = std::min(i0 + kBlock, m);
    for (std::size_t p0 = 0; p0 < k; p0 += kBlock) {
      const std::size_t p_end = std::min(p0 + kBlock, k);
      for (std::size_t i = i0; i < i_end; ++i) {
        const float* ai = a.data() + i * k;
        float* ci = c.data() + i * n;
        for (std::size_t p = p0; p < p_end; ++p) {
          const float av = ai[p];
          const float* bp = b.data() + p * n;
          for (std::size_t j = 0; j < n; ++j) ci[j] += av * bp[j];
        }
      }
    }
  }
}

std::size_t argmax(std::span<const float> x) {
  ORINSIM_CHECK(!x.empty(), "argmax of empty span");
  std::size_t best = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] > x[best]) best = i;
  }
  return best;
}

double logsumexp(std::span<const float> x) {
  ORINSIM_CHECK(!x.empty(), "logsumexp of empty span");
  float mx = x[0];
  for (float v : x) mx = std::max(mx, v);
  double sum = 0.0;
  for (float v : x) sum += std::exp(static_cast<double>(v) - mx);
  return static_cast<double>(mx) + std::log(sum);
}

}  // namespace orinsim::kernels
