// FP32 compute kernels for the functional transformer engine.
//
// Conventions:
//  - Activations are row-major [tokens, features] spans.
//  - All kernels are pure functions over spans; OpenMP-parallel over rows
//    where the row count justifies it.
//  - Weight matmuls live in quant/ (they dispatch on storage precision);
//    these kernels cover everything else in a transformer block.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace orinsim::kernels {

// y = x + b (broadcast bias over rows). x: [rows, cols], b: [cols].
void add_bias(std::span<float> x, std::span<const float> bias, std::size_t rows,
              std::size_t cols);

// Element-wise y += x.
void add_inplace(std::span<float> y, std::span<const float> x);

// Element-wise scale.
void scale_inplace(std::span<float> x, float factor);

// In-place row-wise softmax over [rows, cols] with numerical stabilization.
void softmax_rows(std::span<float> x, std::size_t rows, std::size_t cols);

// RMSNorm (Llama-style): y = x / rms(x) * gain, per row.
void rmsnorm_rows(std::span<const float> x, std::span<const float> gain,
                  std::span<float> y, std::size_t rows, std::size_t cols, float eps = 1e-5f);

// LayerNorm (Phi-style): y = (x - mean) / sqrt(var + eps) * gain + bias, per row.
void layernorm_rows(std::span<const float> x, std::span<const float> gain,
                    std::span<const float> bias, std::span<float> y, std::size_t rows,
                    std::size_t cols, float eps = 1e-5f);

// SiLU (x * sigmoid(x)) applied element-wise.
void silu_inplace(std::span<float> x);

// GELU (tanh approximation) applied element-wise.
void gelu_inplace(std::span<float> x);

// SwiGLU gating: out[i] = silu(gate[i]) * up[i].
void swiglu(std::span<const float> gate, std::span<const float> up, std::span<float> out);

// Rotary position embedding applied in-place to a [heads, head_dim] block for
// one token at absolute position pos. head_dim must be even; rotates pairs
// (2i, 2i+1) with theta-base frequencies (Llama convention).
void rope_inplace(std::span<float> qk, std::size_t heads, std::size_t head_dim,
                  std::size_t pos, float theta_base = 10000.0f);

// Precomputed RoPE cos/sin tables for one (max_seq, head_dim, theta_base)
// triple. Entries are computed with the exact float expressions of
// rope_inplace, so apply() is bit-identical to it while skipping the
// per-token-per-pair pow/cos/sin.
class RopeTable {
 public:
  RopeTable() = default;
  RopeTable(std::size_t max_seq, std::size_t head_dim, float theta_base);

  // Rotate a [heads, head_dim] block for one token at absolute position pos.
  void apply(std::span<float> qk, std::size_t heads, std::size_t head_dim,
             std::size_t pos) const;

  std::size_t max_seq() const { return max_seq_; }

 private:
  std::size_t max_seq_ = 0;
  std::size_t head_dim_ = 0;
  // [max_seq, head_dim/2] each.
  std::vector<float> cos_;
  std::vector<float> sin_;
};

// Dot product (fp32 accumulate).
float dot(std::span<const float> a, std::span<const float> b);

// out[r] = sum_c a[r,c]*b[c]; generic fp32 matvec used in attention.
void matvec(std::span<const float> a, std::span<const float> x, std::span<float> out,
            std::size_t rows, std::size_t cols);

// Lane-batched matvec: x is [lanes, cols], out is [lanes, rows]; each weight
// row is streamed once for all lanes. Lane t's result is bit-identical to
// matvec(a, x[t]) at both kernel levels (simd::dot_f32_multi contract) —
// used for the batched lm_head projection in decode.
void matvec_multi(std::span<const float> a, std::span<const float> x, std::span<float> out,
                  std::size_t rows, std::size_t cols, std::size_t lanes);

// Plain fp32 GEMM: C[m,n] = A[m,k] * B[k,n]. Blocked + OpenMP. Used by tests
// as the reference for quantized matmuls and by the trainer.
void gemm(std::span<const float> a, std::span<const float> b, std::span<float> c,
          std::size_t m, std::size_t k, std::size_t n);

// argmax over a span; ties resolve to the lowest index.
std::size_t argmax(std::span<const float> x);

// log-sum-exp of a span (stable); building block for cross-entropy.
double logsumexp(std::span<const float> x);

}  // namespace orinsim::kernels
