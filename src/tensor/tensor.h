// A minimal dense FP32 tensor for the functional engine's activations.
//
// Weights are NOT stored here — they live in quant::WeightMatrix, which owns
// per-precision storage. Activations always compute in FP32 (the LLM.int8()
// convention: quantized weights, higher-precision accumulation), so a single
// float container with shape bookkeeping suffices and keeps kernels simple.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "core/error.h"
#include "core/rng.h"

namespace orinsim {

class Tensor {
 public:
  static constexpr std::size_t kMaxRank = 4;

  Tensor() = default;
  explicit Tensor(std::initializer_list<std::size_t> dims) { reshape(dims); }
  explicit Tensor(std::span<const std::size_t> dims) { reshape(dims); }

  void reshape(std::initializer_list<std::size_t> dims) {
    reshape(std::span<const std::size_t>(dims.begin(), dims.size()));
  }
  void reshape(std::span<const std::size_t> dims);

  std::size_t rank() const noexcept { return rank_; }
  std::size_t dim(std::size_t i) const {
    ORINSIM_DCHECK(i < rank_, "dim index out of range");
    return dims_[i];
  }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  std::span<float> data() noexcept { return data_; }
  std::span<const float> data() const noexcept { return data_; }
  float* raw() noexcept { return data_.data(); }
  const float* raw() const noexcept { return data_.data(); }

  // Row view for 2-D tensors: row r of a [rows, cols] tensor.
  std::span<float> row(std::size_t r);
  std::span<const float> row(std::size_t r) const;

  float& at(std::size_t i0) { return data_[check_index(i0)]; }
  float at(std::size_t i0) const { return data_[check_index(i0)]; }
  float& at2(std::size_t i0, std::size_t i1);
  float at2(std::size_t i0, std::size_t i1) const;
  float& at3(std::size_t i0, std::size_t i1, std::size_t i2);
  float at3(std::size_t i0, std::size_t i1, std::size_t i2) const;

  void fill(float value);
  void zero() { fill(0.0f); }
  // Gaussian init with given stddev (transformer-style init).
  void randn(Rng& rng, float stddev);

 private:
  std::size_t check_index(std::size_t i) const {
    ORINSIM_DCHECK(i < data_.size(), "tensor index out of range");
    return i;
  }

  std::array<std::size_t, kMaxRank> dims_ = {};
  std::size_t rank_ = 0;
  std::vector<float> data_;
};

}  // namespace orinsim
