// Numeric precisions used throughout the study. Matches the paper's axis:
// FP32, FP16, INT8 (LLM.int8() row-wise absmax) and INT4 (block-wise).
#pragma once

#include <string>

#include "core/error.h"

namespace orinsim {

enum class DType { kF32, kF16, kI8, kI4 };

// Bytes per weight element, fractional for INT4 (two weights per byte plus a
// per-block scale amortized in QuantizedMatrix, not here).
constexpr double dtype_bytes(DType dt) {
  switch (dt) {
    case DType::kF32:
      return 4.0;
    case DType::kF16:
      return 2.0;
    case DType::kI8:
      return 1.0;
    case DType::kI4:
      return 0.5;
  }
  return 4.0;
}

inline std::string dtype_name(DType dt) {
  switch (dt) {
    case DType::kF32:
      return "FP32";
    case DType::kF16:
      return "FP16";
    case DType::kI8:
      return "INT8";
    case DType::kI4:
      return "INT4";
  }
  return "?";
}

inline DType parse_dtype(const std::string& name) {
  if (name == "FP32" || name == "fp32" || name == "f32") return DType::kF32;
  if (name == "FP16" || name == "fp16" || name == "f16") return DType::kF16;
  if (name == "INT8" || name == "int8" || name == "i8") return DType::kI8;
  if (name == "INT4" || name == "int4" || name == "i4") return DType::kI4;
  ORINSIM_CHECK(false, "unknown dtype: " + name);
  return DType::kF32;
}

inline constexpr DType kAllDTypes[] = {DType::kF32, DType::kF16, DType::kI8, DType::kI4};

}  // namespace orinsim
