#include "tensor/tensor.h"

#include <algorithm>

namespace orinsim {

void Tensor::reshape(std::span<const std::size_t> dims) {
  ORINSIM_CHECK(dims.size() >= 1 && dims.size() <= kMaxRank, "tensor rank must be 1..4");
  std::size_t total = 1;
  for (std::size_t d : dims) {
    ORINSIM_CHECK(d > 0, "tensor dims must be positive");
    total *= d;
  }
  rank_ = dims.size();
  std::copy(dims.begin(), dims.end(), dims_.begin());
  data_.assign(total, 0.0f);
}

std::span<float> Tensor::row(std::size_t r) {
  ORINSIM_CHECK(rank_ == 2, "row() requires a 2-D tensor");
  ORINSIM_CHECK(r < dims_[0], "row out of range");
  return std::span<float>(data_.data() + r * dims_[1], dims_[1]);
}

std::span<const float> Tensor::row(std::size_t r) const {
  ORINSIM_CHECK(rank_ == 2, "row() requires a 2-D tensor");
  ORINSIM_CHECK(r < dims_[0], "row out of range");
  return std::span<const float>(data_.data() + r * dims_[1], dims_[1]);
}

float& Tensor::at2(std::size_t i0, std::size_t i1) {
  ORINSIM_DCHECK(rank_ == 2, "at2 requires rank 2");
  return data_[check_index(i0 * dims_[1] + i1)];
}

float Tensor::at2(std::size_t i0, std::size_t i1) const {
  ORINSIM_DCHECK(rank_ == 2, "at2 requires rank 2");
  return data_[check_index(i0 * dims_[1] + i1)];
}

float& Tensor::at3(std::size_t i0, std::size_t i1, std::size_t i2) {
  ORINSIM_DCHECK(rank_ == 3, "at3 requires rank 3");
  return data_[check_index((i0 * dims_[1] + i1) * dims_[2] + i2)];
}

float Tensor::at3(std::size_t i0, std::size_t i1, std::size_t i2) const {
  ORINSIM_DCHECK(rank_ == 3, "at3 requires rank 3");
  return data_[check_index((i0 * dims_[1] + i1) * dims_[2] + i2)];
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Tensor::randn(Rng& rng, float stddev) {
  for (auto& v : data_) v = static_cast<float>(rng.normal(0.0, stddev));
}

}  // namespace orinsim
