// Shape checks: the paper's qualitative findings, expressed as assertions
// over the simulated studies. Each bench prints its checks and the test
// suite requires them all to pass — this is the repository's definition of
// "the reproduction holds".
#pragma once

#include <string>
#include <vector>

#include "harness/experiments.h"

namespace orinsim::harness {

struct CheckResult {
  std::string name;
  bool passed = false;
  std::string detail;
};

// §3.1: throughput rises and latency rises with batch size for every model;
// Llama gains ~203% throughput from bs=32 to 128; memory grows with batch.
std::vector<CheckResult> check_batch_sweep(const BatchSweep& sweep);

// §3.2: throughput falls and latency grows with sequence length; memory
// grows (KV cache); Phi-2 OOMs for sl > 256.
std::vector<CheckResult> check_seq_sweep(const SeqSweep& sweep);

// §3.3 + Table 1: INT8 halves RAM but is ~62% slower than FP16 for small
// models; Mistral INT8 within a few % of FP16; FP32 OOM for Mistral/DeepQ;
// FP16 OOM for DeepQ.
std::vector<CheckResult> check_quant_study(const QuantStudy& study);

// §3.3/Fig 4: INT8 draws less power than FP16 and INT4; FP16 has the lowest
// energy for Llama; INT4 energy is the worst.
std::vector<CheckResult> check_power_energy(const PowerEnergyStudy& study);

// §3.4/Fig 5 for Llama: PM-A saves ~28% power at ~26% latency cost with
// energy <= MaxN; PM-B halves power but costs energy; PM-E/F negligible
// latency; PM-H latency +>300%, power roughly halved, energy up.
std::vector<CheckResult> check_power_modes(const PowerModeStudy& study);

// All checks over freshly-run studies (convenience for tests/benches).
std::vector<CheckResult> run_all_shape_checks();

// True iff every check passed.
bool all_passed(const std::vector<CheckResult>& checks);

// Formats pass/fail lines for bench output.
std::string format_checks(const std::vector<CheckResult>& checks);

}  // namespace orinsim::harness
