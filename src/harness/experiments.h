// Experiment sweeps regenerating the paper's tables and figures from the
// simulator. One function per study; bench binaries format the results next
// to the embedded paper reference values, and tests assert the shape checks.
#pragma once

#include <string>
#include <vector>

#include "core/table.h"
#include "sim/model_catalog.h"
#include "sim/power_mode.h"
#include "workload/corpus.h"
#include "workload/prompt_pool.h"

namespace orinsim::harness {

// One simulated configuration's results.
struct Cell {
  bool oom = false;
  double ram_total_gb = 0.0;
  double ram_incremental_gb = 0.0;
  double latency_s = 0.0;
  double throughput_tps = 0.0;
  double median_power_w = 0.0;
  double energy_j = 0.0;
};

inline const std::vector<std::size_t>& batch_size_sweep() {
  static const std::vector<std::size_t> kSizes = {1, 2, 4, 8, 16, 32, 64, 128};
  return kSizes;
}

// ---- Fig 1/6/7, Tables 4/5: batch-size sweep (sl=96, MaxN, default dtypes).
struct BatchSweep {
  workload::Dataset dataset;
  std::vector<std::size_t> batch_sizes;
  // cells[model_index][batch_index]; model order = sim::model_catalog().
  std::vector<std::vector<Cell>> cells;
};
BatchSweep run_batch_sweep(workload::Dataset dataset);

// ---- Fig 2/8/9, Tables 6/7: sequence-length sweep (bs=32, MaxN).
struct SeqSweep {
  workload::Dataset dataset;
  std::vector<workload::SeqConfig> seq_configs;
  std::vector<std::vector<Cell>> cells;  // [model][seq]
};
SeqSweep run_seq_sweep(workload::Dataset dataset);

// ---- Fig 3/11: quantization study (bs=32, sl=96, MaxN, all precisions).
struct QuantStudy {
  std::vector<DType> dtypes;             // F32, F16, I8, I4
  std::vector<std::vector<Cell>> cells;  // [model][dtype]
};
QuantStudy run_quant_study();

// ---- Fig 4/10: power & energy vs batch size and precision for one model.
struct PowerEnergyStudy {
  std::string model_key;
  std::vector<DType> dtypes;  // F16, I8, I4
  std::vector<std::size_t> batch_sizes;
  std::vector<std::vector<Cell>> cells;  // [dtype][batch]
};
PowerEnergyStudy run_power_energy(const std::string& model_key);

// ---- Fig 5: power-mode study (bs=32, sl=96, default dtypes, all 9 modes).
struct PowerModeStudy {
  std::vector<sim::PowerMode> modes;
  std::vector<std::vector<Cell>> cells;  // [model][mode]
};
PowerModeStudy run_power_modes();

// ---- Formatting helpers (markdown tables in the paper's layout) ----
enum class Metric { kRam, kLatency, kThroughput, kPower, kEnergy };
std::string metric_name(Metric metric);
double metric_value(const Cell& cell, Metric metric);

// Paper-style wide table: one row per sweep point, one column per model.
Table batch_sweep_table(const BatchSweep& sweep, Metric metric);
Table seq_sweep_table(const SeqSweep& sweep, Metric metric);
// Side-by-side sim-vs-paper table for the appendix tables (4-7).
Table batch_sweep_comparison(const BatchSweep& sweep, Metric metric);
Table seq_sweep_comparison(const SeqSweep& sweep, Metric metric);
Table quant_study_table(const QuantStudy& study, Metric metric);
Table power_mode_table(const PowerModeStudy& study);
Table power_energy_table(const PowerEnergyStudy& study);

}  // namespace orinsim::harness
