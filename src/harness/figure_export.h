// Figure-data export: writes the series behind every paper figure as
// whitespace-delimited .dat files (gnuplot/matplotlib-ready), one file per
// figure panel, plus a MANIFEST.txt describing columns. This is the
// "artifact" format for regenerating the paper's plots from the simulator.
#pragma once

#include <string>
#include <vector>

#include "trace/timeline.h"

namespace orinsim::harness {

struct ExportResult {
  std::string directory;
  std::vector<std::string> files;  // paths written, relative to directory
};

// Runs the figure studies and writes:
//   fig1_<model>.dat      bs  throughput  latency  ram        (per model)
//   fig2_<model>.dat      seq throughput  latency  ram
//   fig3_quant.dat        model dtype latency throughput ram power energy
//   fig4_<dtype>.dat      bs  power  energy                   (Llama)
//   fig5_power_modes.dat  model mode latency power energy
//   MANIFEST.txt
// The directory is created if missing. Returns the file list.
ExportResult export_figure_data(const std::string& directory);

// Writes one execution timeline next to the figure data:
//   <base>.jsonl       one JSON object per StepEvent
//   <base>.trace.json  Chrome trace_event JSON (chrome://tracing, Perfetto)
// Kept separate from export_figure_data so the figure manifest stays stable.
ExportResult export_timeline_artifacts(const trace::ExecutionTimeline& timeline,
                                       const std::string& directory,
                                       const std::string& base);

}  // namespace orinsim::harness
