// Figure-data export: writes the series behind every paper figure as
// whitespace-delimited .dat files (gnuplot/matplotlib-ready), one file per
// figure panel, plus a MANIFEST.txt describing columns. This is the
// "artifact" format for regenerating the paper's plots from the simulator.
#pragma once

#include <string>
#include <vector>

namespace orinsim::harness {

struct ExportResult {
  std::string directory;
  std::vector<std::string> files;  // paths written, relative to directory
};

// Runs the figure studies and writes:
//   fig1_<model>.dat      bs  throughput  latency  ram        (per model)
//   fig2_<model>.dat      seq throughput  latency  ram
//   fig3_quant.dat        model dtype latency throughput ram power energy
//   fig4_<dtype>.dat      bs  power  energy                   (Llama)
//   fig5_power_modes.dat  model mode latency power energy
//   MANIFEST.txt
// The directory is created if missing. Returns the file list.
ExportResult export_figure_data(const std::string& directory);

}  // namespace orinsim::harness
