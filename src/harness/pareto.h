// Configuration optimizer: turns the simulator into the decision tool the
// paper's conclusion calls for ("leverage these empirical results to
// optimize LLM inferencing on the edge").
//
// For a model it enumerates the full configuration space the paper studies —
// precision x batch size x power mode x (extension) KV-cache precision —
// evaluates each on the simulated Orin AGX, and computes:
//  - the Pareto frontier over (latency per token, energy per token, RAM);
//  - the best configuration under user constraints (max latency, max power,
//    max RAM), minimizing a chosen objective.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/inference_sim.h"
#include "workload/prompt_pool.h"

namespace orinsim::harness {

struct ConfigPoint {
  DType dtype = DType::kF16;
  std::size_t batch = 32;
  std::string power_mode = "MaxN";
  bool kv_cache_int8 = false;

  // Evaluated metrics (per the paper's definitions).
  double latency_s = 0.0;          // batch time-to-last-token
  double latency_per_token_ms = 0.0;  // latency / (batch * seq)
  double energy_per_token_j = 0.0;
  double throughput_tps = 0.0;
  double median_power_w = 0.0;
  double ram_gb = 0.0;

  std::string label() const;
};

struct ParetoOptions {
  std::string model_key = "llama3";
  workload::SeqConfig seq = workload::seq_config_default();
  std::vector<std::size_t> batch_sizes = {1, 8, 32, 128};
  std::vector<DType> dtypes = {DType::kF16, DType::kI8, DType::kI4};
  std::vector<std::string> power_modes = {"MaxN", "A", "B", "H"};
  bool include_kv_int8 = true;
};

// Every feasible (non-OOM) configuration, evaluated.
std::vector<ConfigPoint> enumerate_configs(const ParetoOptions& options);

// The subset of `points` not dominated on (latency/token, energy/token, RAM)
// — lower is better on all three. Order preserved.
std::vector<ConfigPoint> pareto_frontier(const std::vector<ConfigPoint>& points);

struct Constraints {
  std::optional<double> max_latency_s;      // per batch
  std::optional<double> max_power_w;        // median draw
  std::optional<double> max_ram_gb;
};

enum class Objective { kLatencyPerToken, kEnergyPerToken, kThroughput };

// Best feasible configuration, or nullopt if nothing satisfies the
// constraints. kThroughput maximizes; the others minimize.
std::optional<ConfigPoint> best_config(const std::vector<ConfigPoint>& points,
                                       const Constraints& constraints,
                                       Objective objective);

}  // namespace orinsim::harness
