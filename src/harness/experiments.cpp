#include "harness/experiments.h"

#include <cmath>

#include "core/error.h"
#include "core/units.h"
#include "serving/session.h"
#include "sim/paper_reference.h"

namespace orinsim::harness {

namespace {

Cell run_cell(const std::string& model_key, DType dtype, workload::Dataset dataset,
              std::size_t batch, const workload::SeqConfig& seq,
              const sim::PowerMode& pm = sim::power_mode_maxn()) {
  serving::SimSession session(model_key, dtype, dataset, pm);
  serving::BatchRequest request;
  request.batch = batch;
  request.seq = seq;
  const serving::BatchResult r = session.run(request);
  Cell cell;
  cell.oom = r.oom;
  if (r.oom) return cell;
  cell.ram_total_gb = r.total_ram_gb;
  cell.ram_incremental_gb = r.incremental_ram_gb;
  cell.latency_s = r.latency_s;
  cell.throughput_tps = r.throughput_tps;
  cell.median_power_w = r.median_power_w;
  cell.energy_j = r.energy_j;
  return cell;
}

}  // namespace

BatchSweep run_batch_sweep(workload::Dataset dataset) {
  BatchSweep sweep;
  sweep.dataset = dataset;
  sweep.batch_sizes = batch_size_sweep();
  for (const auto& m : sim::model_catalog()) {
    std::vector<Cell> row;
    row.reserve(sweep.batch_sizes.size());
    for (std::size_t bs : sweep.batch_sizes) {
      row.push_back(run_cell(m.key, m.default_dtype, dataset, bs,
                             workload::seq_config_default()));
    }
    sweep.cells.push_back(std::move(row));
  }
  return sweep;
}

SeqSweep run_seq_sweep(workload::Dataset dataset) {
  SeqSweep sweep;
  sweep.dataset = dataset;
  sweep.seq_configs = workload::seq_config_sweep();
  for (const auto& m : sim::model_catalog()) {
    std::vector<Cell> row;
    row.reserve(sweep.seq_configs.size());
    for (const auto& sc : sweep.seq_configs) {
      row.push_back(run_cell(m.key, m.default_dtype, dataset, 32, sc));
    }
    sweep.cells.push_back(std::move(row));
  }
  return sweep;
}

QuantStudy run_quant_study() {
  QuantStudy study;
  study.dtypes = {DType::kF32, DType::kF16, DType::kI8, DType::kI4};
  for (const auto& m : sim::model_catalog()) {
    std::vector<Cell> row;
    for (DType dt : study.dtypes) {
      row.push_back(run_cell(m.key, dt, workload::Dataset::kWikiText2, 32,
                             workload::seq_config_default()));
    }
    study.cells.push_back(std::move(row));
  }
  return study;
}

PowerEnergyStudy run_power_energy(const std::string& model_key) {
  PowerEnergyStudy study;
  study.model_key = model_key;
  study.dtypes = {DType::kF16, DType::kI8, DType::kI4};
  study.batch_sizes = batch_size_sweep();
  for (DType dt : study.dtypes) {
    std::vector<Cell> row;
    for (std::size_t bs : study.batch_sizes) {
      row.push_back(run_cell(model_key, dt, workload::Dataset::kWikiText2, bs,
                             workload::seq_config_default()));
    }
    study.cells.push_back(std::move(row));
  }
  return study;
}

PowerModeStudy run_power_modes() {
  PowerModeStudy study;
  study.modes = sim::all_power_modes();
  for (const auto& m : sim::model_catalog()) {
    std::vector<Cell> row;
    for (const auto& pm : study.modes) {
      row.push_back(run_cell(m.key, m.default_dtype, workload::Dataset::kWikiText2, 32,
                             workload::seq_config_default(), pm));
    }
    study.cells.push_back(std::move(row));
  }
  return study;
}

std::string metric_name(Metric metric) {
  switch (metric) {
    case Metric::kRam:
      return "RAM (GB)";
    case Metric::kLatency:
      return "Latency (s)";
    case Metric::kThroughput:
      return "Throughput (tokens/s)";
    case Metric::kPower:
      return "Median Power (W)";
    case Metric::kEnergy:
      return "Energy (J)";
  }
  return "?";
}

double metric_value(const Cell& cell, Metric metric) {
  switch (metric) {
    case Metric::kRam:
      return cell.ram_total_gb;
    case Metric::kLatency:
      return cell.latency_s;
    case Metric::kThroughput:
      return cell.throughput_tps;
    case Metric::kPower:
      return cell.median_power_w;
    case Metric::kEnergy:
      return cell.energy_j;
  }
  return 0.0;
}

namespace {

std::vector<std::string> model_headers(const std::string& first) {
  std::vector<std::string> headers = {first};
  for (const auto& m : sim::model_catalog()) headers.push_back(m.display);
  return headers;
}

int metric_decimals(Metric metric) { return metric == Metric::kRam ? 2 : 2; }

void add_metric_cell(Table& table, const Cell& cell, Metric metric) {
  if (cell.oom) {
    table.add_oom();
  } else {
    table.add_number(metric_value(cell, metric), metric_decimals(metric));
  }
}

// Paper value lookup for comparison tables. Returns NaN for OOM cells.
double paper_batch_value(workload::Dataset dataset, std::size_t model_idx,
                         std::size_t batch, Metric metric) {
  const auto& rows = dataset == workload::Dataset::kWikiText2
                         ? sim::table4_batch_wikitext2()
                         : sim::table5_batch_longbench();
  for (const auto& row : rows) {
    if (row.batch_size != batch) continue;
    switch (metric) {
      case Metric::kRam:
        return row.ram_gb[model_idx];
      case Metric::kLatency:
        return row.latency_s[model_idx];
      case Metric::kThroughput:
        return row.throughput_tps[model_idx];
      default:
        return std::nan("");
    }
  }
  return std::nan("");
}

double paper_seq_value(workload::Dataset dataset, std::size_t model_idx, std::size_t total,
                       Metric metric) {
  const auto& rows = dataset == workload::Dataset::kWikiText2 ? sim::table7_seq_wikitext2()
                                                              : sim::table6_seq_longbench();
  for (const auto& row : rows) {
    if (row.seq_total != total) continue;
    switch (metric) {
      case Metric::kRam:
        return row.ram_gb[model_idx];
      case Metric::kLatency:
        return row.latency_s[model_idx];
      case Metric::kThroughput:
        return row.throughput_tps[model_idx];
      default:
        return std::nan("");
    }
  }
  return std::nan("");
}

void add_compare_cell(Table& table, const Cell& cell, double paper, Metric metric) {
  std::string sim_text = cell.oom ? "OOM" : format_double(metric_value(cell, metric), 2);
  std::string paper_text = std::isnan(paper) ? "OOM" : format_double(paper, 2);
  table.add_cell(sim_text + " / " + paper_text);
}

}  // namespace

Table batch_sweep_table(const BatchSweep& sweep, Metric metric) {
  Table table(model_headers("Batch Size"));
  for (std::size_t b = 0; b < sweep.batch_sizes.size(); ++b) {
    table.new_row().add_cell(std::to_string(sweep.batch_sizes[b]));
    for (std::size_t mi = 0; mi < sweep.cells.size(); ++mi) {
      add_metric_cell(table, sweep.cells[mi][b], metric);
    }
  }
  return table;
}

Table seq_sweep_table(const SeqSweep& sweep, Metric metric) {
  Table table(model_headers("Seq Length"));
  for (std::size_t s = 0; s < sweep.seq_configs.size(); ++s) {
    table.new_row().add_cell(std::to_string(sweep.seq_configs[s].total));
    for (std::size_t mi = 0; mi < sweep.cells.size(); ++mi) {
      add_metric_cell(table, sweep.cells[mi][s], metric);
    }
  }
  return table;
}

Table batch_sweep_comparison(const BatchSweep& sweep, Metric metric) {
  std::vector<std::string> headers = {"Batch Size"};
  for (const auto& m : sim::model_catalog()) headers.push_back(m.display + " (sim/paper)");
  Table table(std::move(headers));
  for (std::size_t b = 0; b < sweep.batch_sizes.size(); ++b) {
    table.new_row().add_cell(std::to_string(sweep.batch_sizes[b]));
    for (std::size_t mi = 0; mi < sweep.cells.size(); ++mi) {
      add_compare_cell(table, sweep.cells[mi][b],
                       paper_batch_value(sweep.dataset, mi, sweep.batch_sizes[b], metric),
                       metric);
    }
  }
  return table;
}

Table seq_sweep_comparison(const SeqSweep& sweep, Metric metric) {
  std::vector<std::string> headers = {"Seq Length"};
  for (const auto& m : sim::model_catalog()) headers.push_back(m.display + " (sim/paper)");
  Table table(std::move(headers));
  for (std::size_t s = 0; s < sweep.seq_configs.size(); ++s) {
    const std::size_t total = sweep.seq_configs[s].total;
    table.new_row().add_cell(std::to_string(total));
    for (std::size_t mi = 0; mi < sweep.cells.size(); ++mi) {
      add_compare_cell(table, sweep.cells[mi][s],
                       paper_seq_value(sweep.dataset, mi, total, metric), metric);
    }
  }
  return table;
}

Table quant_study_table(const QuantStudy& study, Metric metric) {
  std::vector<std::string> headers = {"Model"};
  for (DType dt : study.dtypes) headers.push_back(dtype_name(dt));
  Table table(std::move(headers));
  const auto& catalog = sim::model_catalog();
  for (std::size_t mi = 0; mi < study.cells.size(); ++mi) {
    table.new_row().add_cell(catalog[mi].display);
    for (std::size_t d = 0; d < study.dtypes.size(); ++d) {
      add_metric_cell(table, study.cells[mi][d], metric);
    }
  }
  return table;
}

Table power_mode_table(const PowerModeStudy& study) {
  Table table({"Model", "Power Mode", "Latency (s)", "Median Power (W)", "Energy (J)",
               "vs MaxN latency", "vs MaxN power", "vs MaxN energy"});
  const auto& catalog = sim::model_catalog();
  for (std::size_t mi = 0; mi < study.cells.size(); ++mi) {
    const Cell& maxn = study.cells[mi][0];
    for (std::size_t p = 0; p < study.modes.size(); ++p) {
      const Cell& cell = study.cells[mi][p];
      table.new_row().add_cell(catalog[mi].display).add_cell(study.modes[p].name);
      if (cell.oom) {
        table.add_oom().add_oom().add_oom().add_cell("-").add_cell("-").add_cell("-");
        continue;
      }
      table.add_number(cell.latency_s, 2)
          .add_number(cell.median_power_w, 1)
          .add_number(cell.energy_j, 0);
      auto pct = [](double v, double base) {
        return format_double((v / base - 1.0) * 100.0, 1) + "%";
      };
      table.add_cell(pct(cell.latency_s, maxn.latency_s))
          .add_cell(pct(cell.median_power_w, maxn.median_power_w))
          .add_cell(pct(cell.energy_j, maxn.energy_j));
    }
  }
  return table;
}

Table power_energy_table(const PowerEnergyStudy& study) {
  Table table({"Batch Size", "Precision", "Latency (s)", "Median Power (W)", "Energy (J)",
               "Throughput (tokens/s)"});
  for (std::size_t d = 0; d < study.dtypes.size(); ++d) {
    for (std::size_t b = 0; b < study.batch_sizes.size(); ++b) {
      const Cell& cell = study.cells[d][b];
      table.new_row()
          .add_cell(std::to_string(study.batch_sizes[b]))
          .add_cell(dtype_name(study.dtypes[d]));
      if (cell.oom) {
        table.add_oom().add_oom().add_oom().add_oom();
        continue;
      }
      table.add_number(cell.latency_s, 2)
          .add_number(cell.median_power_w, 1)
          .add_number(cell.energy_j, 0)
          .add_number(cell.throughput_tps, 1);
    }
  }
  return table;
}

}  // namespace orinsim::harness
