#include "harness/figure_export.h"

#include <filesystem>
#include <fstream>

#include "core/error.h"
#include "harness/experiments.h"
#include "sim/model_catalog.h"
#include "trace/export.h"

namespace orinsim::harness {

namespace {

std::ofstream open_file(const std::string& dir, const std::string& name,
                        std::vector<std::string>& files) {
  const std::filesystem::path path = std::filesystem::path(dir) / name;
  std::ofstream out(path);
  ORINSIM_CHECK(out.good(), "figure export: cannot write " + path.string());
  files.push_back(name);
  return out;
}

std::string file_key(const sim::ModelSpec& m) {
  std::string key = m.key;
  for (auto& c : key) {
    if (c == '-') c = '_';
  }
  return key;
}

}  // namespace

ExportResult export_figure_data(const std::string& directory) {
  std::filesystem::create_directories(directory);
  ExportResult result;
  result.directory = directory;

  const auto& catalog = sim::model_catalog();

  // Fig 1 / 6: batch sweep, WikiText2.
  {
    const BatchSweep sweep = run_batch_sweep(workload::Dataset::kWikiText2);
    for (std::size_t mi = 0; mi < catalog.size(); ++mi) {
      auto out = open_file(directory, "fig1_" + file_key(catalog[mi]) + ".dat",
                           result.files);
      out << "# bs  throughput_tps  latency_s  ram_gb\n";
      for (std::size_t b = 0; b < sweep.batch_sizes.size(); ++b) {
        const Cell& c = sweep.cells[mi][b];
        if (c.oom) continue;
        out << sweep.batch_sizes[b] << "  " << c.throughput_tps << "  " << c.latency_s
            << "  " << c.ram_total_gb << "\n";
      }
    }
  }

  // Fig 2 / 8: sequence sweep, LongBench.
  {
    const SeqSweep sweep = run_seq_sweep(workload::Dataset::kLongBench);
    for (std::size_t mi = 0; mi < catalog.size(); ++mi) {
      auto out = open_file(directory, "fig2_" + file_key(catalog[mi]) + ".dat",
                           result.files);
      out << "# seq_total  throughput_tps  latency_s  ram_gb\n";
      for (std::size_t s = 0; s < sweep.seq_configs.size(); ++s) {
        const Cell& c = sweep.cells[mi][s];
        if (c.oom) continue;
        out << sweep.seq_configs[s].total << "  " << c.throughput_tps << "  "
            << c.latency_s << "  " << c.ram_total_gb << "\n";
      }
    }
  }

  // Fig 3 / 11: quantization study.
  {
    const QuantStudy study = run_quant_study();
    auto out = open_file(directory, "fig3_quant.dat", result.files);
    out << "# model  dtype  latency_s  throughput_tps  ram_gb  power_w  energy_j\n";
    for (std::size_t mi = 0; mi < catalog.size(); ++mi) {
      for (std::size_t d = 0; d < study.dtypes.size(); ++d) {
        const Cell& c = study.cells[mi][d];
        if (c.oom) continue;
        out << catalog[mi].key << "  " << dtype_name(study.dtypes[d]) << "  "
            << c.latency_s << "  " << c.throughput_tps << "  " << c.ram_total_gb << "  "
            << c.median_power_w << "  " << c.energy_j << "\n";
      }
    }
  }

  // Fig 4: power/energy vs batch x precision for Llama.
  {
    const PowerEnergyStudy study = run_power_energy("llama3");
    for (std::size_t d = 0; d < study.dtypes.size(); ++d) {
      auto out = open_file(directory,
                           "fig4_" + dtype_name(study.dtypes[d]) + ".dat", result.files);
      out << "# bs  power_w  energy_j\n";
      for (std::size_t b = 0; b < study.batch_sizes.size(); ++b) {
        const Cell& c = study.cells[d][b];
        if (c.oom) continue;
        out << study.batch_sizes[b] << "  " << c.median_power_w << "  " << c.energy_j
            << "\n";
      }
    }
  }

  // Fig 5: power modes.
  {
    const PowerModeStudy study = run_power_modes();
    auto out = open_file(directory, "fig5_power_modes.dat", result.files);
    out << "# model  mode  latency_s  power_w  energy_j\n";
    for (std::size_t mi = 0; mi < catalog.size(); ++mi) {
      for (std::size_t p = 0; p < study.modes.size(); ++p) {
        const Cell& c = study.cells[mi][p];
        if (c.oom) continue;
        out << catalog[mi].key << "  " << study.modes[p].name << "  " << c.latency_s
            << "  " << c.median_power_w << "  " << c.energy_j << "\n";
      }
    }
  }

  {
    auto out = open_file(directory, "MANIFEST.txt", result.files);
    out << "orinsim figure data (simulated Orin AGX 64GB)\n"
        << "fig1_<model>.dat      : bs throughput_tps latency_s ram_gb  (WikiText2, sl=96)\n"
        << "fig2_<model>.dat      : seq throughput_tps latency_s ram_gb (LongBench, bs=32)\n"
        << "fig3_quant.dat        : model dtype latency throughput ram power energy\n"
        << "fig4_<dtype>.dat      : bs power_w energy_j (Llama-3.1-8B)\n"
        << "fig5_power_modes.dat  : model mode latency power energy (bs=32, sl=96)\n";
  }
  return result;
}

ExportResult export_timeline_artifacts(const trace::ExecutionTimeline& timeline,
                                       const std::string& directory,
                                       const std::string& base) {
  std::filesystem::create_directories(directory);
  ExportResult result;
  result.directory = directory;
  const std::filesystem::path dir(directory);
  trace::write_jsonl(timeline, (dir / (base + ".jsonl")).string());
  result.files.push_back(base + ".jsonl");
  trace::write_chrome_trace(timeline, (dir / (base + ".trace.json")).string(), base);
  result.files.push_back(base + ".trace.json");
  return result;
}

}  // namespace orinsim::harness
