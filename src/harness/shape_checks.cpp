#include "harness/shape_checks.h"

#include <cmath>
#include <sstream>

#include "core/error.h"
#include "core/stats.h"
#include "core/units.h"
#include "sim/model_catalog.h"

namespace orinsim::harness {

namespace {

CheckResult make_check(const std::string& name, bool passed, const std::string& detail) {
  return CheckResult{name, passed, detail};
}

std::string pct(double ratio) {
  std::ostringstream os;
  os << format_double((ratio - 1.0) * 100.0, 1) << "%";
  return os.str();
}

std::size_t model_index(const std::string& key) {
  const auto& catalog = sim::model_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].key == key) return i;
  }
  ORINSIM_CHECK(false, "unknown model: " + key);
  return 0;
}

std::vector<double> series(const std::vector<Cell>& cells, Metric metric) {
  std::vector<double> out;
  for (const auto& c : cells) {
    if (!c.oom) out.push_back(metric_value(c, metric));
  }
  return out;
}

}  // namespace

std::vector<CheckResult> check_batch_sweep(const BatchSweep& sweep) {
  std::vector<CheckResult> checks;
  const auto& catalog = sim::model_catalog();
  for (std::size_t mi = 0; mi < sweep.cells.size(); ++mi) {
    const auto tput = series(sweep.cells[mi], Metric::kThroughput);
    const auto lat = series(sweep.cells[mi], Metric::kLatency);
    const auto ram = series(sweep.cells[mi], Metric::kRam);
    checks.push_back(make_check(
        catalog[mi].display + ": throughput rises with batch size",
        is_monotonic_increasing(tput, 0.02),
        "bs=1 " + format_double(tput.front(), 1) + " -> bs=128 " +
            format_double(tput.back(), 1) + " tok/s"));
    checks.push_back(make_check(
        catalog[mi].display + ": latency rises with batch size",
        is_monotonic_increasing(lat, 0.05),
        "bs=1 " + format_double(lat.front(), 2) + "s -> bs=128 " +
            format_double(lat.back(), 2) + "s"));
    checks.push_back(make_check(catalog[mi].display + ": memory grows with batch size",
                                is_monotonic_increasing(ram, 0.01),
                                format_double(ram.front(), 2) + " -> " +
                                    format_double(ram.back(), 2) + " GB"));
  }
  // §3.1 quotes Llama "improving by 203% from 184 to 558 tok/s ... from 32
  // to 128"; 184 tok/s is actually Table 4's bs=16 entry (bs=32 is 308), so
  // the quantitative claim is the 16->128 ratio (~3x) and the 32->128 gain
  // is ~1.8x.
  {
    const auto& cells = sweep.cells[model_index("llama3")];
    const double t16 = metric_value(cells[4], Metric::kThroughput);
    const double t32 = metric_value(cells[5], Metric::kThroughput);
    const double t128 = metric_value(cells[7], Metric::kThroughput);
    checks.push_back(make_check("Llama3: large throughput gain bs=16->128 (paper +203%)",
                                t128 / t16 > 2.2, pct(t128 / t16)));
    checks.push_back(make_check("Llama3: throughput gain bs=32->128 (Table 4: +81%)",
                                t128 / t32 > 1.6, pct(t128 / t32)));
  }
  // DeepSeek saturates concurrency by bs=128: its bs=64->128 throughput gain
  // should be clearly sub-linear (< 2x for a 2x batch).
  {
    const auto& cells = sweep.cells[model_index("deepseek-qwen")];
    const double t64 = metric_value(cells[6], Metric::kThroughput);
    const double t128 = metric_value(cells[7], Metric::kThroughput);
    checks.push_back(make_check("DeepQ: throughput saturating by bs=128",
                                t128 / t64 < 1.8, pct(t128 / t64)));
  }
  return checks;
}

std::vector<CheckResult> check_seq_sweep(const SeqSweep& sweep) {
  std::vector<CheckResult> checks;
  const auto& catalog = sim::model_catalog();
  for (std::size_t mi = 0; mi < sweep.cells.size(); ++mi) {
    const auto tput = series(sweep.cells[mi], Metric::kThroughput);
    const auto lat = series(sweep.cells[mi], Metric::kLatency);
    const auto ram = series(sweep.cells[mi], Metric::kRam);
    checks.push_back(make_check(catalog[mi].display + ": throughput falls with seq length",
                                is_monotonic_decreasing(tput, 0.02), ""));
    checks.push_back(make_check(catalog[mi].display + ": latency grows with seq length",
                                is_monotonic_increasing(lat, 0.02), ""));
    checks.push_back(make_check(catalog[mi].display + ": memory grows with seq length",
                                is_monotonic_increasing(ram, 0.01), ""));
  }
  // Phi-2 OOM for sl > 256 (Table 6), fine at 128/256.
  {
    const auto& cells = sweep.cells[model_index("phi2")];
    const bool pattern = !cells[0].oom && !cells[1].oom && cells[2].oom && cells[3].oom;
    checks.push_back(
        make_check("Phi2: OOM at sl>=512 but not below (eager attention)", pattern,
                   std::string("oom flags: ") + (cells[0].oom ? "1" : "0") +
                       (cells[1].oom ? "1" : "0") + (cells[2].oom ? "1" : "0") +
                       (cells[3].oom ? "1" : "0")));
  }
  // Llama at sl=1024: latency ~2.8-3.1x the sl=512 latency in the paper.
  {
    const auto& cells = sweep.cells[model_index("llama3")];
    const double ratio = cells[3].latency_s / cells[2].latency_s;
    checks.push_back(make_check("Llama3: superlinear latency growth sl 512->1024",
                                ratio > 2.0, "x" + format_double(ratio, 2)));
  }
  return checks;
}

std::vector<CheckResult> check_quant_study(const QuantStudy& study) {
  std::vector<CheckResult> checks;
  const auto& catalog = sim::model_catalog();
  auto cell = [&](const std::string& key, DType dt) -> const Cell& {
    const std::size_t mi = model_index(key);
    for (std::size_t d = 0; d < study.dtypes.size(); ++d) {
      if (study.dtypes[d] == dt) return study.cells[mi][d];
    }
    ORINSIM_CHECK(false, "dtype not in study");
    return study.cells[0][0];
  };

  // OOM pattern (Table 1 / Fig 3).
  checks.push_back(make_check("Mistral FP32 OOM", cell("mistral", DType::kF32).oom, ""));
  checks.push_back(
      make_check("DeepQ FP32+FP16 OOM", cell("deepseek-qwen", DType::kF32).oom &&
                                            cell("deepseek-qwen", DType::kF16).oom,
                 ""));
  checks.push_back(make_check("DeepQ INT8 fits", !cell("deepseek-qwen", DType::kI8).oom, ""));
  checks.push_back(make_check("Phi2+Llama FP32 fit",
                              !cell("phi2", DType::kF32).oom && !cell("llama3", DType::kF32).oom,
                              ""));

  // INT8 is slower than FP16 for the small models (paper: +62%), within a
  // few % for Mistral.
  for (const std::string key : {"phi2", "llama3"}) {
    const double ratio = cell(key, DType::kI8).latency_s / cell(key, DType::kF16).latency_s;
    checks.push_back(make_check(catalog[model_index(key)].display +
                                    ": INT8 much slower than FP16 (paper +62%)",
                                ratio > 1.4 && ratio < 1.9, pct(ratio)));
  }
  {
    const double ratio =
        cell("mistral", DType::kI8).latency_s / cell("mistral", DType::kF16).latency_s;
    checks.push_back(make_check("Mistral: INT8 within ~5% of FP16 (paper +2%)",
                                ratio < 1.08, pct(ratio)));
  }
  // INT8 cuts RAM roughly in half vs FP16 (paper: ~46-47%). Phi-2's total is
  // dominated by its runtime overhead rather than its 5.6 GB of weights, so
  // its relative saving is structurally smaller.
  for (const std::string key : {"phi2", "llama3", "mistral"}) {
    const double saving =
        1.0 - cell(key, DType::kI8).ram_total_gb / cell(key, DType::kF16).ram_total_gb;
    const double lo = key == "phi2" ? 0.20 : 0.35;
    checks.push_back(make_check(catalog[model_index(key)].display +
                                    ": INT8 saves a large share of FP16 RAM",
                                saving > lo && saving < 0.60,
                                format_double(saving * 100.0, 1) + "%"));
  }
  // INT4 slower than INT8 for every model that runs both.
  for (const std::string key : {"phi2", "llama3", "mistral", "deepseek-qwen"}) {
    const Cell& i8 = cell(key, DType::kI8);
    const Cell& i4 = cell(key, DType::kI4);
    if (i8.oom || i4.oom) continue;
    checks.push_back(make_check(catalog[model_index(key)].display + ": INT4 slower than INT8",
                                i4.latency_s > i8.latency_s,
                                pct(i4.latency_s / i8.latency_s)));
  }
  return checks;
}

std::vector<CheckResult> check_power_energy(const PowerEnergyStudy& study) {
  std::vector<CheckResult> checks;
  auto row = [&](DType dt) -> const std::vector<Cell>& {
    for (std::size_t d = 0; d < study.dtypes.size(); ++d) {
      if (study.dtypes[d] == dt) return study.cells[d];
    }
    ORINSIM_CHECK(false, "dtype not in study");
    return study.cells[0];
  };
  const auto& f16 = row(DType::kF16);
  const auto& i8 = row(DType::kI8);
  const auto& i4 = row(DType::kI4);

  std::size_t power_ok = 0, runnable = 0;
  for (std::size_t b = 0; b < study.batch_sizes.size(); ++b) {
    if (f16[b].oom || i8[b].oom) continue;
    ++runnable;
    if (i8[b].median_power_w < f16[b].median_power_w) ++power_ok;
  }
  checks.push_back(make_check(study.model_key + ": INT8 draws less power than FP16",
                              runnable > 0 && power_ok == runnable,
                              std::to_string(power_ok) + "/" + std::to_string(runnable) +
                                  " batch sizes"));

  std::size_t i4_power_ok = 0, i4_runnable = 0;
  for (std::size_t b = 0; b < study.batch_sizes.size(); ++b) {
    if (i4[b].oom || i8[b].oom) continue;
    ++i4_runnable;
    if (i8[b].median_power_w < i4[b].median_power_w) ++i4_power_ok;
  }
  checks.push_back(make_check(study.model_key + ": INT8 draws less power than INT4",
                              i4_runnable > 0 && i4_power_ok == i4_runnable, ""));

  if (study.model_key == "llama3") {
    // FP16 has the lowest energy for Llama; INT4 the worst (Fig 4).
    std::size_t e_f16_best = 0, e_i4_worst = 0, n = 0;
    for (std::size_t b = 0; b < study.batch_sizes.size(); ++b) {
      if (f16[b].oom || i8[b].oom || i4[b].oom) continue;
      ++n;
      if (f16[b].energy_j <= i8[b].energy_j && f16[b].energy_j <= i4[b].energy_j) {
        ++e_f16_best;
      }
      if (i4[b].energy_j >= f16[b].energy_j && i4[b].energy_j >= i8[b].energy_j) {
        ++e_i4_worst;
      }
    }
    checks.push_back(make_check("llama3: FP16 lowest energy across batch sizes",
                                n > 0 && e_f16_best == n, ""));
    checks.push_back(make_check("llama3: INT4 highest energy across batch sizes",
                                n > 0 && e_i4_worst == n, ""));
  }
  return checks;
}

std::vector<CheckResult> check_power_modes(const PowerModeStudy& study) {
  std::vector<CheckResult> checks;
  const std::size_t llama = model_index("llama3");
  auto mode_cell = [&](const std::string& name) -> const Cell& {
    for (std::size_t p = 0; p < study.modes.size(); ++p) {
      if (study.modes[p].name == name) return study.cells[llama][p];
    }
    ORINSIM_CHECK(false, "mode not in study: " + name);
    return study.cells[0][0];
  };
  const Cell& maxn = mode_cell("MaxN");

  {
    const Cell& a = mode_cell("A");
    const double dpow = a.median_power_w / maxn.median_power_w - 1.0;
    const double dlat = a.latency_s / maxn.latency_s - 1.0;
    checks.push_back(make_check("PM-A: power down ~28%", dpow < -0.18 && dpow > -0.40,
                                format_double(dpow * 100, 1) + "%"));
    checks.push_back(make_check("PM-A: latency up ~26%", dlat > 0.10 && dlat < 0.45,
                                format_double(dlat * 100, 1) + "%"));
    checks.push_back(make_check("PM-A: energy not worse than MaxN",
                                a.energy_j <= maxn.energy_j * 1.02, ""));
  }
  {
    const Cell& b = mode_cell("B");
    const double dpow = b.median_power_w / maxn.median_power_w - 1.0;
    checks.push_back(make_check("PM-B: power roughly halved", dpow < -0.35,
                                format_double(dpow * 100, 1) + "%"));
    checks.push_back(make_check("PM-B: energy worse than MaxN (latency dominates)",
                                b.energy_j > maxn.energy_j, ""));
  }
  {
    const Cell& e = mode_cell("E");
    const Cell& f = mode_cell("F");
    const bool ok = e.latency_s / maxn.latency_s < 1.05 && f.latency_s / maxn.latency_s < 1.05;
    checks.push_back(make_check("PM-E/F: core count has negligible latency impact", ok, ""));
  }
  {
    const Cell& h = mode_cell("H");
    const double dlat = h.latency_s / maxn.latency_s - 1.0;
    const double dpow = h.median_power_w / maxn.median_power_w - 1.0;
    const double dene = h.energy_j / maxn.energy_j - 1.0;
    checks.push_back(make_check("PM-H: latency up >300% (paper +370%)", dlat > 3.0,
                                format_double(dlat * 100, 0) + "%"));
    checks.push_back(make_check("PM-H: power down sharply (paper -52%)", dpow < -0.30,
                                format_double(dpow * 100, 1) + "%"));
    checks.push_back(make_check("PM-H: energy up sharply (paper +72%)", dene > 0.30,
                                format_double(dene * 100, 1) + "%"));
  }
  {
    const Cell& c = mode_cell("C");
    const Cell& d = mode_cell("D");
    const bool ok = c.latency_s > maxn.latency_s && d.latency_s > c.latency_s;
    checks.push_back(
        make_check("PM-C/D: CPU frequency slows inference, D more than C", ok, ""));
  }
  return checks;
}

std::vector<CheckResult> run_all_shape_checks() {
  std::vector<CheckResult> all;
  auto extend = [&all](std::vector<CheckResult> more) {
    for (auto& c : more) all.push_back(std::move(c));
  };
  extend(check_batch_sweep(run_batch_sweep(workload::Dataset::kWikiText2)));
  extend(check_seq_sweep(run_seq_sweep(workload::Dataset::kLongBench)));
  extend(check_quant_study(run_quant_study()));
  extend(check_power_energy(run_power_energy("llama3")));
  extend(check_power_modes(run_power_modes()));
  return all;
}

bool all_passed(const std::vector<CheckResult>& checks) {
  for (const auto& c : checks) {
    if (!c.passed) return false;
  }
  return true;
}

std::string format_checks(const std::vector<CheckResult>& checks) {
  std::ostringstream os;
  for (const auto& c : checks) {
    os << (c.passed ? "[PASS] " : "[FAIL] ") << c.name;
    if (!c.detail.empty()) os << "  (" << c.detail << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace orinsim::harness
