#include "harness/pareto.h"

#include <algorithm>

#include "core/error.h"

namespace orinsim::harness {

std::string ConfigPoint::label() const {
  std::string s = dtype_name(dtype) + " bs=" + std::to_string(batch) + " " + power_mode;
  if (kv_cache_int8) s += " kv8";
  return s;
}

std::vector<ConfigPoint> enumerate_configs(const ParetoOptions& options) {
  ORINSIM_CHECK(!options.batch_sizes.empty() && !options.dtypes.empty() &&
                    !options.power_modes.empty(),
                "pareto: empty configuration axes");
  const sim::InferenceSim simulator;
  std::vector<ConfigPoint> points;
  const double tokens_per_batch = static_cast<double>(options.seq.total);

  for (DType dt : options.dtypes) {
    for (std::size_t bs : options.batch_sizes) {
      for (const auto& pm_name : options.power_modes) {
        for (int kv8 = 0; kv8 <= (options.include_kv_int8 ? 1 : 0); ++kv8) {
          sim::SimRequest rq;
          rq.model_key = options.model_key;
          rq.dtype = dt;
          rq.batch = bs;
          rq.in_tokens = options.seq.input;
          rq.out_tokens = options.seq.output;
          rq.power_mode = sim::power_mode_by_name(pm_name);
          rq.kv_cache_int8 = kv8 == 1;
          rq.noise_sigma = 0.0;
          const sim::SimResult r = simulator.run(rq);
          if (r.oom) continue;

          ConfigPoint p;
          p.dtype = dt;
          p.batch = bs;
          p.power_mode = pm_name;
          p.kv_cache_int8 = kv8 == 1;
          p.latency_s = r.latency_s;
          const double total_tokens = static_cast<double>(bs) * tokens_per_batch;
          p.latency_per_token_ms = r.latency_s / total_tokens * 1e3;
          p.energy_per_token_j = r.energy_j / total_tokens;
          p.throughput_tps = r.throughput_tps;
          p.median_power_w = r.median_power_w;
          p.ram_gb = r.memory.total_gb();
          points.push_back(p);
        }
      }
    }
  }
  return points;
}

namespace {

bool dominates(const ConfigPoint& a, const ConfigPoint& b) {
  const bool no_worse = a.latency_per_token_ms <= b.latency_per_token_ms &&
                        a.energy_per_token_j <= b.energy_per_token_j &&
                        a.ram_gb <= b.ram_gb;
  const bool strictly_better = a.latency_per_token_ms < b.latency_per_token_ms ||
                               a.energy_per_token_j < b.energy_per_token_j ||
                               a.ram_gb < b.ram_gb;
  return no_worse && strictly_better;
}

}  // namespace

std::vector<ConfigPoint> pareto_frontier(const std::vector<ConfigPoint>& points) {
  std::vector<ConfigPoint> frontier;
  for (const auto& candidate : points) {
    bool dominated = false;
    for (const auto& other : points) {
      if (dominates(other, candidate)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(candidate);
  }
  return frontier;
}

std::optional<ConfigPoint> best_config(const std::vector<ConfigPoint>& points,
                                       const Constraints& constraints,
                                       Objective objective) {
  std::optional<ConfigPoint> best;
  auto score = [&](const ConfigPoint& p) {
    switch (objective) {
      case Objective::kLatencyPerToken:
        return p.latency_per_token_ms;
      case Objective::kEnergyPerToken:
        return p.energy_per_token_j;
      case Objective::kThroughput:
        return -p.throughput_tps;  // minimize the negative
    }
    return 0.0;
  };
  for (const auto& p : points) {
    if (constraints.max_latency_s && p.latency_s > *constraints.max_latency_s) continue;
    if (constraints.max_power_w && p.median_power_w > *constraints.max_power_w) continue;
    if (constraints.max_ram_gb && p.ram_gb > *constraints.max_ram_gb) continue;
    if (!best || score(p) < score(*best)) best = p;
  }
  return best;
}

}  // namespace orinsim::harness
