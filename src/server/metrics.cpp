#include "server/metrics.h"

#include <cmath>
#include <cstdio>

namespace orinsim::server {

namespace {

void counter(std::string& out, const char* name, const char* help, double value) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "# HELP %s %s\n# TYPE %s counter\n%s %.17g\n",
                name, help, name, name, value);
  out += buf;
}

void gauge(std::string& out, const char* name, const char* help, double value) {
  char buf[256];
  if (std::isnan(value)) {
    std::snprintf(buf, sizeof(buf), "# HELP %s %s\n# TYPE %s gauge\n%s NaN\n",
                  name, help, name, name);
  } else {
    std::snprintf(buf, sizeof(buf), "# HELP %s %s\n# TYPE %s gauge\n%s %.17g\n",
                  name, help, name, name, value);
  }
  out += buf;
}

}  // namespace

std::string render_prometheus(const EngineHost::Metrics& m) {
  std::string out;
  out.reserve(4096);
  counter(out, "orinsim_requests_submitted_total",
          "Requests accepted into the engine", static_cast<double>(m.submitted));
  counter(out, "orinsim_requests_rejected_total",
          "Requests rejected with 429 (queue cap)", static_cast<double>(m.rejected));
  counter(out, "orinsim_requests_completed_total",
          "Requests retired with a full completion", static_cast<double>(m.completed));
  gauge(out, "orinsim_requests_active", "Requests holding a decode lane",
        static_cast<double>(m.active));
  gauge(out, "orinsim_requests_queued", "Requests waiting for a lane",
        static_cast<double>(m.queued));
  counter(out, "orinsim_prompt_tokens_total", "Prompt tokens across submitted requests",
          static_cast<double>(m.prompt_tokens));
  counter(out, "orinsim_completion_tokens_total", "Generated tokens streamed to clients",
          static_cast<double>(m.completion_tokens));
  counter(out, "orinsim_prefill_steps_total", "Prefill waves executed",
          static_cast<double>(m.prefill_steps));
  counter(out, "orinsim_decode_steps_total", "Decode steps executed",
          static_cast<double>(m.decode_steps));
  counter(out, "orinsim_preemptions_total", "KV-exhaustion preemptions",
          static_cast<double>(m.preemptions));
  counter(out, "orinsim_energy_joules_total",
          "Modeled energy attributed to executed steps", m.energy_j);
  const double total_tokens =
      static_cast<double>(m.prompt_tokens + m.completion_tokens);
  gauge(out, "orinsim_energy_per_request_joules",
        "Attributed energy per completed request (NaN before the first completion)",
        m.completed > 0 ? m.energy_j / static_cast<double>(m.completed)
                        : std::nan(""));
  gauge(out, "orinsim_energy_per_token_joules",
        "Attributed energy per prompt+generated token (NaN before any tokens)",
        total_tokens > 0 ? m.energy_j / total_tokens : std::nan(""));
  gauge(out, "orinsim_engine_time_seconds", "Engine clock (wall-aligned while serving)",
        m.engine_time_s);
  counter(out, "orinsim_governor_step_downs_total",
          "Power-mode step-downs (power cap + thermal)",
          static_cast<double>(m.governor_step_downs));
  gauge(out, "orinsim_request_latency_mean_seconds",
        "Mean completed-request latency (NaN before the first completion)",
        m.latency_mean_s);
  gauge(out, "orinsim_request_latency_p95_seconds",
        "p95 completed-request latency (NaN before the first completion)",
        m.latency_p95_s);
  gauge(out, "orinsim_kv_blocks_used", "KV pool blocks in use",
        static_cast<double>(m.kv_used_blocks));
  gauge(out, "orinsim_kv_blocks_total", "KV pool capacity in blocks",
        static_cast<double>(m.kv_total_blocks));
  gauge(out, "orinsim_draining", "1 while the server is draining",
        m.draining ? 1.0 : 0.0);
  if (m.prefix_cache_enabled) {
    counter(out, "orinsim_prefix_cache_hits_total", "Prefix-cache hits",
            static_cast<double>(m.prefix_cache.hits));
    counter(out, "orinsim_prefix_cache_misses_total", "Prefix-cache misses",
            static_cast<double>(m.prefix_cache.misses));
    counter(out, "orinsim_prefix_cache_hit_tokens_total",
            "Prompt tokens served from cached KV blocks",
            static_cast<double>(m.prefix_cache.hit_tokens));
    counter(out, "orinsim_prefix_cache_inserted_blocks_total",
            "Blocks inserted at retirement",
            static_cast<double>(m.prefix_cache.inserted_blocks));
    counter(out, "orinsim_prefix_cache_evicted_blocks_total",
            "Cached blocks reclaimed under pressure",
            static_cast<double>(m.prefix_cache.evicted_blocks));
  }
  if (m.speculation_enabled) {
    counter(out, "orinsim_spec_rounds_total", "Speculative draft/verify rounds",
            static_cast<double>(m.speculation.rounds));
    counter(out, "orinsim_spec_proposed_total",
            "Draft tokens the target verified",
            static_cast<double>(m.speculation.proposed));
    counter(out, "orinsim_spec_accepted_total", "Verified draft tokens accepted",
            static_cast<double>(m.speculation.accepted));
    counter(out, "orinsim_spec_emitted_total",
            "Tokens retired by speculative rounds",
            static_cast<double>(m.speculation.emitted));
    counter(out, "orinsim_draft_steps_total", "Draft-model step events",
            static_cast<double>(m.draft_steps));
    gauge(out, "orinsim_spec_acceptance_rate",
          "accepted / proposed over all rounds", m.speculation.acceptance_rate());
    gauge(out, "orinsim_spec_tokens_per_round",
          "Tokens emitted per verification round",
          m.speculation.tokens_per_round());
  }
  return out;
}

}  // namespace orinsim::server
