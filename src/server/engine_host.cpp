#include "server/engine_host.h"

#include <utility>

#include "core/error.h"
#include "core/stats.h"

namespace orinsim::server {

// ---------------------------------------------------------------------------
// CompletionStream
// ---------------------------------------------------------------------------

bool CompletionStream::next_token(std::string& text) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return !tokens_.empty() || done_; });
  if (!tokens_.empty()) {
    text = std::move(tokens_.front());
    tokens_.pop_front();
    return true;
  }
  return false;
}

void CompletionStream::cancel() {
  std::lock_guard<std::mutex> lk(mu_);
  cancelled_ = true;
  tokens_.clear();
}

void CompletionStream::push(std::string text) {
  std::lock_guard<std::mutex> lk(mu_);
  if (cancelled_) return;
  tokens_.push_back(std::move(text));
  cv_.notify_one();
}

void CompletionStream::finish(Final final_info) {
  std::lock_guard<std::mutex> lk(mu_);
  final_ = final_info;
  done_ = true;
  cv_.notify_all();
}

// ---------------------------------------------------------------------------
// EngineHost
// ---------------------------------------------------------------------------

EngineHost::EngineHost(serving::TokenBackend& backend, const Tokenizer& tokenizer,
                       std::size_t max_seq, Config config)
    : backend_(backend),
      tokenizer_(tokenizer),
      max_seq_(max_seq),
      config_(std::move(config)),
      engine_(backend, config_.governor, /*real_time=*/true) {
  ORINSIM_CHECK(config_.queue_cap > 0, "engine host: queue cap must be positive");
  engine_thread_ = std::thread([this] { engine_loop(); });
}

EngineHost::~EngineHost() {
  drain();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (engine_thread_.joinable()) engine_thread_.join();
}

void EngineHost::engine_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    if (engine_.idle()) {
      if (stop_ || draining_) break;
      cv_.wait(lk, [&] { return stop_ || draining_ || !engine_.idle(); });
      continue;
    }
    // Token/finish callbacks fire inside step() on this thread, with mu_
    // held; they only touch per-stream locks and host counters.
    engine_.step();
  }
  drained_ = true;
  cv_.notify_all();
}

EngineHost::Submission EngineHost::submit(const std::string& prompt,
                                          std::size_t max_new_tokens) {
  Submission out;
  if (config_.max_new_tokens_cap > 0 && max_new_tokens > config_.max_new_tokens_cap) {
    max_new_tokens = config_.max_new_tokens_cap;
  }
  if (max_new_tokens == 0) {
    out.status = SubmitStatus::kInvalid;
    out.error = "max_tokens must be at least 1";
    return out;
  }
  std::vector<TokenId> tokens = tokenizer_.encode(prompt);
  if (tokens.empty()) {
    out.status = SubmitStatus::kInvalid;
    out.error = "prompt must encode to at least one token";
    return out;
  }
  if (tokens.size() + max_new_tokens > max_seq_) {
    out.status = SubmitStatus::kInvalid;
    out.error = "prompt + max_tokens exceeds the model context (" +
                std::to_string(max_seq_) + " tokens)";
    return out;
  }

  auto stream = std::make_shared<CompletionStream>();
  serving::StreamCallbacks callbacks;
  // Both callbacks run on the engine thread with mu_ held: bare counter
  // updates are already serialized, and stream pushes take only the
  // stream's own lock.
  callbacks.on_token = [this, stream](const serving::Request& req, TokenId token) {
    (void)req;
    ++completion_tokens_;
    stream->push(tokenizer_.token_text(token));
  };
  callbacks.on_finish = [this, stream](const serving::Request& req) {
    ++completed_;
    CompletionStream::Final final_info;
    final_info.prompt_tokens = req.prompt_tokens;
    final_info.completion_tokens = req.generated;
    final_info.preemptions = req.preemptions;
    final_info.prefix_cached_tokens = req.prefix_cached;
    stream->finish(final_info);
  };

  serving::Request req;
  req.prompt = std::move(tokens);
  req.prompt_tokens = req.prompt.size();
  req.max_new_tokens = max_new_tokens;

  {
    std::lock_guard<std::mutex> lk(mu_);
    if (draining_ || stop_) {
      out.status = SubmitStatus::kDraining;
      return out;
    }
    if (engine_.queue_depth() >= config_.queue_cap) {
      ++rejected_;
      out.status = SubmitStatus::kRejected;
      return out;
    }
    const std::size_t id = engine_.submit(std::move(req), std::move(callbacks));
    ORINSIM_CHECK(id != serving::ContinuousEngine::kRejected,
                  "engine host: engine rejected a gated submission");
    ORINSIM_CHECK(id == streams_.size(), "engine host: stream table out of sync");
    streams_.push_back(stream);
  }
  cv_.notify_all();
  out.status = SubmitStatus::kOk;
  out.stream = std::move(stream);
  return out;
}

EngineHost::Metrics EngineHost::metrics() const {
  std::lock_guard<std::mutex> lk(mu_);
  Metrics m;
  m.submitted = engine_.submitted_count();
  m.rejected = rejected_;
  m.completed = completed_;
  m.active = engine_.active_count();
  m.queued = engine_.queue_depth();
  m.completion_tokens = completion_tokens_;
  for (std::size_t i = 0; i < engine_.submitted_count(); ++i) {
    const serving::Request& r = engine_.request(i);
    m.prompt_tokens += r.prompt_tokens;
    m.preemptions += r.preemptions;
  }
  const trace::ExecutionTimeline& timeline = engine_.timeline();
  // kVerify is a speculative round's target pass — count it as a decode step
  // so speculative and plain serving report comparable step totals.
  m.decode_steps =
      timeline.count(trace::Phase::kDecode) + timeline.count(trace::Phase::kVerify);
  m.prefill_steps = timeline.count(trace::Phase::kPrefill);
  m.draft_steps = timeline.count(trace::Phase::kDraft);
  m.speculation_enabled = backend_.speculation_enabled();
  m.speculation = engine_.speculation();
  m.energy_j = timeline.total_energy_j();
  m.engine_time_s = timeline.now();
  m.governor_step_downs =
      timeline.governor_event_count(trace::GovernorEventKind::kPowerCapStepDown) +
      timeline.governor_event_count(trace::GovernorEventKind::kThermalStepDown);
  // NaN when nothing completed yet — deliberately preserved (see
  // core/stats.h): /metrics reports it as NaN, tables as "n/a".
  m.latency_mean_s = orinsim::mean(timeline.request_latencies());
  m.latency_p95_s = orinsim::percentile(timeline.request_latencies(), 95.0);
  m.prefix_cache_enabled = backend_.prefix_cache_enabled();
  m.prefix_cache = backend_.prefix_cache_stats();
  const serving::TokenBackend::KVUsage kv = backend_.kv_usage();
  m.kv_used_blocks = kv.used_blocks;
  m.kv_total_blocks = kv.total_blocks;
  m.draining = draining_;
  return m;
}

void EngineHost::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  if (!draining_) {
    draining_ = true;
    engine_.drain();
    cv_.notify_all();
  }
  cv_.wait(lk, [&] { return drained_; });
}

}  // namespace orinsim::server
