// Thread-safe host around the steppable ContinuousEngine.
//
// Threading boundary: ContinuousEngine is single-threaded by contract, so
// the host serializes every touch of it under one mutex. A dedicated engine
// thread loops { step() } while work exists and parks on a condition
// variable when idle; connection threads call submit()/metrics()/drain()
// which take the same mutex between steps. Token callbacks fire on the
// engine thread *inside* step() and only push into the per-request
// CompletionStream (its own lock) — connection threads consuming a stream
// never take the engine mutex, so the two lock domains never interleave in
// both orders and cannot deadlock.
//
// Backpressure: submit() rejects (kRejected) when the engine's queue depth
// — submitted but not yet admitted to a lane — is at queue_cap. Rejection
// happens before the request touches the engine, so a 429'd request leaves
// no trace in the timeline.
//
// Drain: drain() stops admissions (kDraining thereafter), lets every
// in-flight request run to retirement, and returns once the engine is
// empty. Streams receive their remaining tokens and finish normally —
// nothing in flight is dropped.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serving/engine.h"
#include "tokenizer/tokenizer.h"

namespace orinsim::server {

// Per-request token conduit between the engine thread (producer) and one
// connection thread (consumer). Tokens arrive as surface text, already
// decoded by the host's tokenizer.
class CompletionStream {
 public:
  struct Final {
    std::size_t prompt_tokens = 0;
    std::size_t completion_tokens = 0;
    std::size_t preemptions = 0;
    std::size_t prefix_cached_tokens = 0;
  };

  // Blocks until a token is available or the stream finishes. Returns false
  // exactly once, when the request has retired and all tokens were
  // delivered; final() is valid from then on.
  bool next_token(std::string& text);

  const Final& final_info() const { return final_; }

  // Consumer gone (client disconnected): drop tokens instead of queueing
  // them. The engine still runs the request to completion.
  void cancel();

 private:
  friend class EngineHost;
  void push(std::string text);
  void finish(Final final_info);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::string> tokens_;
  Final final_;
  bool done_ = false;
  bool cancelled_ = false;
};

class EngineHost {
 public:
  struct Config {
    std::size_t queue_cap = 32;          // waiting requests before 429
    std::size_t max_new_tokens_cap = 0;  // 0: bounded by backend max_seq
    serving::GovernorConfig governor;
  };

  enum class SubmitStatus { kOk, kRejected, kDraining, kInvalid };

  struct Submission {
    SubmitStatus status = SubmitStatus::kInvalid;
    std::string error;  // set when kInvalid
    std::shared_ptr<CompletionStream> stream;
  };

  // `backend` and `tokenizer` must outlive the host. `max_seq` bounds
  // prompt + completion length (requests that cannot fit are kInvalid).
  EngineHost(serving::TokenBackend& backend, const Tokenizer& tokenizer,
             std::size_t max_seq, Config config);
  ~EngineHost();

  EngineHost(const EngineHost&) = delete;
  EngineHost& operator=(const EngineHost&) = delete;

  // Tokenizes the prompt and enqueues it. Thread-safe.
  Submission submit(const std::string& prompt, std::size_t max_new_tokens);

  // Point-in-time serving counters for /metrics. Thread-safe.
  struct Metrics {
    std::size_t submitted = 0;
    std::size_t rejected = 0;        // 429s (never entered the engine)
    std::size_t completed = 0;
    std::size_t active = 0;          // on a lane right now
    std::size_t queued = 0;          // submitted, not yet on a lane
    std::size_t prompt_tokens = 0;   // across completed + in-flight requests
    std::size_t completion_tokens = 0;
    std::size_t decode_steps = 0;
    std::size_t prefill_steps = 0;
    std::size_t preemptions = 0;
    double energy_j = 0.0;
    double engine_time_s = 0.0;      // engine clock (wall-aligned in serving)
    std::size_t governor_step_downs = 0;
    // Completed-request latency distribution; NaN when none completed yet
    // (rendered as such — Prometheus accepts NaN, tables print "n/a").
    double latency_mean_s = 0.0;
    double latency_p95_s = 0.0;
    serving::PrefixCacheStats prefix_cache;
    bool prefix_cache_enabled = false;
    // Speculative decoding (zero / false when the backend runs none).
    // decode_steps above counts kDecode + kVerify events, so step counts
    // stay comparable between speculative and plain serving.
    serving::EngineResult::SpeculationSummary speculation;
    bool speculation_enabled = false;
    std::size_t draft_steps = 0;  // kDraft events emitted
    std::size_t kv_used_blocks = 0;
    std::size_t kv_total_blocks = 0;
    bool draining = false;
  };
  Metrics metrics() const;

  // Stops admissions and blocks until all in-flight requests retired and
  // their streams finished. Idempotent; called automatically on destruction.
  void drain();

  std::size_t queue_cap() const { return config_.queue_cap; }

 private:
  void engine_loop();

  serving::TokenBackend& backend_;
  const Tokenizer& tokenizer_;
  const std::size_t max_seq_;
  const Config config_;

  mutable std::mutex mu_;  // guards engine_ and all counters below
  std::condition_variable cv_;
  serving::ContinuousEngine engine_;
  std::vector<std::shared_ptr<CompletionStream>> streams_;  // by request id
  std::size_t rejected_ = 0;
  std::size_t completed_ = 0;
  std::size_t completion_tokens_ = 0;
  bool draining_ = false;
  bool stop_ = false;
  bool drained_ = false;
  std::thread engine_thread_;
};

}  // namespace orinsim::server
