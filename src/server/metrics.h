// Prometheus text exposition (version 0.0.4) of the host's serving
// counters. Everything rendered here is derived from the engine's event
// stream via EngineHost::metrics(); the scrape and the exported trace
// cannot disagree.
#pragma once

#include <string>

#include "server/engine_host.h"

namespace orinsim::server {

// Renders the full scrape body. Latency gauges may legitimately be NaN
// before any request completes; Prometheus parses the literal "NaN".
std::string render_prometheus(const EngineHost::Metrics& metrics);

inline const char* prometheus_content_type() {
  return "text/plain; version=0.0.4; charset=utf-8";
}

}  // namespace orinsim::server
