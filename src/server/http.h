// Dependency-free HTTP/1.1 request parsing and response formatting for the
// serving daemon.
//
// HttpParser is incremental: feed() accepts arbitrary byte chunks as they
// arrive off the socket (headers may be split at any boundary, including
// mid-token) and the parser accumulates until one full request — headers
// plus body — is available or the input is rejected. Rejection is sticky
// and carries an HTTP status: 400 for malformed syntax (bad request line,
// bad chunk length, bad Content-Length), 431 when the header block exceeds
// the configured cap, 413 when the body does.
//
// Bodies arrive either via Content-Length or Transfer-Encoding: chunked;
// both are bounded by Limits::max_body_bytes. The parser handles exactly
// one request per instance (the daemon serves one request per connection
// and answers with Connection: close).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>

namespace orinsim::server {

struct HttpRequest {
  std::string method;   // e.g. "POST"
  std::string target;   // raw request target, e.g. "/v1/completions?x=1"
  std::string path;     // decoded path component
  std::map<std::string, std::string> query;    // decoded query parameters
  std::map<std::string, std::string> headers;  // keys lower-cased
  std::string body;

  bool has_header(const std::string& name) const { return headers.count(name) > 0; }
  std::string header(const std::string& name, const std::string& fallback = "") const {
    auto it = headers.find(name);
    return it == headers.end() ? fallback : it->second;
  }
};

class HttpParser {
 public:
  struct Limits {
    std::size_t max_header_bytes = 16 * 1024;
    std::size_t max_body_bytes = 1024 * 1024;
  };

  enum class State {
    kHeaders,    // accumulating the request line + header block
    kBody,       // reading a Content-Length body
    kChunkSize,  // reading a chunk-size line
    kChunkData,  // reading chunk payload
    kChunkEnd,   // expecting CRLF after chunk payload
    kTrailers,   // after the terminal 0-chunk, reading trailers to blank line
    kDone,       // one full request parsed; request() is valid
    kError,      // rejected; error_status()/error_reason() say why
  };

  HttpParser() = default;
  explicit HttpParser(const Limits& limits) : limits_(limits) {}

  // Consumes the next chunk of bytes from the connection. Returns the
  // parser state after consuming; feed() after kDone or kError is invalid.
  State feed(std::string_view data);

  State state() const noexcept { return state_; }
  bool done() const noexcept { return state_ == State::kDone; }
  bool failed() const noexcept { return state_ == State::kError; }

  const HttpRequest& request() const noexcept { return request_; }
  int error_status() const noexcept { return error_status_; }
  const std::string& error_reason() const noexcept { return error_reason_; }

 private:
  State fail(int status, std::string reason);
  bool parse_header_block(std::string_view block);
  void advance_body();

  Limits limits_{};
  State state_ = State::kHeaders;
  std::string buffer_;   // unconsumed bytes in the current state
  HttpRequest request_;
  std::size_t content_remaining_ = 0;  // body / chunk bytes still expected
  int error_status_ = 0;
  std::string error_reason_;
};

// Percent-decodes a URL component; returns false on a malformed escape.
// '+' decodes to space (query-string convention).
bool url_decode(std::string_view in, std::string& out);

// Formats a full non-streaming response with Connection: close.
std::string http_response(int status, std::string_view content_type,
                          std::string_view body);

// Response head for a Server-Sent-Events stream (no Content-Length; the
// connection closes when the stream ends).
std::string sse_response_head();

// One SSE event: "data: <payload>\n\n".
std::string sse_event(std::string_view payload);

// Canonical reason phrase for the handful of statuses the daemon emits.
const char* http_status_reason(int status);

}  // namespace orinsim::server
