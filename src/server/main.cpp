// orinsim_serve: streaming HTTP serving daemon over the request-lifecycle
// engine. Runs the functional nano engine (real greedy decode over a paged
// KV cache) behind an OpenAI-style completions API with SSE streaming,
// Prometheus metrics, queue-cap backpressure, and graceful drain on
// SIGTERM/SIGINT.
//
//   ./orinsim_serve [--port=8080] [--host=127.0.0.1] [--model=llama3]
//                   [--seed=7] [--vocab-words=400] [--max-concurrency=4]
//                   [--kv-blocks=0] [--block-tokens=16] [--queue-cap=32]
//                   [--max-tokens-cap=256] [--decode-workers=0]
//                   [--prefix-cache] [--prefix-cache-blocks=0]
//                   [--speculative] [--draft-tokens=4] [--draft-dtype=i8]
//                   [--power-proxy-model=] [--power-cap-w=0] [--thermal]
//                   [--max-connections=64]
//
// --speculative serves through draft/verify rounds: a draft model (the same
// master quantized to --draft-dtype) proposes --draft-tokens tokens per
// round and the target verifies them in one chunked pass. Greedy output is
// unchanged, so --offline prints the identical completion with or without
// the flag (under scalar kernels, bit-for-bit).
//
// Offline reference mode (no HTTP): prints the completion for one prompt
// using the identical model/backend construction, so the SSE token stream
// for the same prompt can be checked for bit-identity against it:
//
//   ./orinsim_serve --offline --prompt="..." [--max-tokens=16] [flags...]
#include <cstdio>
#include <memory>
#include <string>

#include "core/cli.h"
#include "model/config.h"
#include "server/engine_host.h"
#include "server/server.h"
#include "serving/engine.h"
#include "tensor/dtype.h"
#include "tokenizer/tokenizer.h"
#include "workload/corpus.h"

using namespace orinsim;
using namespace orinsim::server;

namespace {

// Everything deterministic about the serving stack in one place: the same
// flags always build the same tokenizer, weights, and backend, which is
// what makes the --offline output comparable bit-for-bit with the daemon's
// SSE stream.
struct ServingStack {
  Tokenizer tokenizer;
  std::shared_ptr<const MasterWeights> master;
  std::unique_ptr<Model> model;
  std::unique_ptr<Model> draft;  // --speculative only (same master, draft dtype)
  std::unique_ptr<ThreadPool> decode_pool;
  std::unique_ptr<serving::FunctionalTokenBackend> backend;
  std::size_t max_seq = 0;
};

ServingStack build_stack(const CliArgs& args) {
  ServingStack stack;
  const workload::Corpus corpus =
      workload::generate_corpus(workload::CorpusSpec::wikitext2());
  stack.tokenizer = Tokenizer::train(
      corpus.text, static_cast<std::size_t>(args.get_int("vocab-words", 400)));
  const TransformerConfig config = make_nano_config(
      args.get("model", "llama3"), stack.tokenizer.vocab_size());
  stack.master = MasterWeights::init_random(
      config, static_cast<std::uint64_t>(args.get_int("seed", 7)));
  stack.model = std::make_unique<Model>(stack.master, DType::kF32);
  stack.max_seq = config.max_seq;

  const long long workers = args.get_int("decode-workers", 0);
  if (workers > 0) {
    stack.decode_pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(workers));
  }

  serving::FunctionalTokenBackend::Config bc;
  bc.max_lanes = static_cast<std::size_t>(args.get_int("max-concurrency", 4));
  bc.max_seq = stack.max_seq;
  bc.kv_blocks = static_cast<std::size_t>(args.get_int("kv-blocks", 0));
  bc.block_tokens = static_cast<std::size_t>(
      args.get_int("block-tokens", static_cast<long long>(kDefaultKVBlockTokens)));
  bc.power_proxy_model = args.get("power-proxy-model", "");
  bc.prefix_cache = args.get_bool("prefix-cache", false);
  bc.prefix_cache_blocks =
      static_cast<std::size_t>(args.get_int("prefix-cache-blocks", 0));
  bc.speculation.enabled = args.get_bool("speculative", false);
  bc.speculation.draft_tokens =
      static_cast<std::size_t>(args.get_int("draft-tokens", 4));
  bc.speculation.draft_dtype = parse_dtype(args.get("draft-dtype", "i8"));
  if (bc.speculation.enabled) {
    // Self-draft pairing: the draft shares the target's master weights,
    // quantized down, so the two models agree often enough to accept.
    stack.draft =
        std::make_unique<Model>(stack.master, bc.speculation.draft_dtype);
  }
  stack.backend = std::make_unique<serving::FunctionalTokenBackend>(
      *stack.model, bc, stack.decode_pool.get(), stack.draft.get());
  return stack;
}

serving::GovernorConfig governor_from(const CliArgs& args) {
  serving::GovernorConfig governor;
  governor.power_cap_w = args.get_double("power-cap-w", 0.0);
  governor.thermal_enabled = args.get_bool("thermal", false);
  return governor;
}

// Offline reference: run the prompt through the steppable engine in
// offline (virtual clock) mode and print the completion text — the exact
// concatenation a client would receive over SSE.
int run_offline(const CliArgs& args) {
  const std::string prompt = args.get("prompt", "");
  if (prompt.empty()) {
    std::fprintf(stderr, "--offline requires --prompt\n");
    return 1;
  }
  const std::size_t max_tokens =
      static_cast<std::size_t>(args.get_int("max-tokens", 16));
  ServingStack stack = build_stack(args);

  serving::Request req;
  req.prompt = stack.tokenizer.encode(prompt);
  if (req.prompt.empty() || req.prompt.size() + max_tokens > stack.max_seq) {
    std::fprintf(stderr, "prompt does not fit the model context\n");
    return 1;
  }
  req.prompt_tokens = req.prompt.size();
  req.max_new_tokens = max_tokens;

  std::string text;
  serving::StreamCallbacks callbacks;
  callbacks.on_token = [&](const serving::Request&, TokenId token) {
    text += stack.tokenizer.token_text(token);
  };
  serving::ContinuousEngine engine(*stack.backend, governor_from(args));
  engine.submit(std::move(req), std::move(callbacks));
  while (engine.step() == serving::ContinuousEngine::Step::kWorked) {
  }
  engine.finish();
  std::printf("%s\n", text.c_str());
  return 0;
}

int run_server(const CliArgs& args) {
  ServingStack stack = build_stack(args);

  EngineHost::Config host_config;
  host_config.queue_cap = static_cast<std::size_t>(args.get_int("queue-cap", 32));
  host_config.max_new_tokens_cap =
      static_cast<std::size_t>(args.get_int("max-tokens-cap", 256));
  host_config.governor = governor_from(args);
  EngineHost host(*stack.backend, stack.tokenizer, stack.max_seq, host_config);

  ServerConfig server_config;
  server_config.bind_address = args.get("host", "127.0.0.1");
  server_config.port = static_cast<std::uint16_t>(args.get_int("port", 8080));
  server_config.model_name = args.get("model", "llama3") + "-nano";
  server_config.max_connections =
      static_cast<std::size_t>(args.get_int("max-connections", 64));
  Server server(host, server_config);

  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "orinsim_serve: %s\n", error.c_str());
    return 1;
  }
  // The port line is machine-readable on purpose: scripts bind port 0 and
  // scrape the actual port from here.
  std::printf("orinsim_serve listening on %s:%u\n",
              server_config.bind_address.c_str(), server.port());
  std::fflush(stdout);

  server.run_until_signal();
  std::printf("orinsim_serve drained, exiting\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.get_bool("offline", false)) return run_offline(args);
  return run_server(args);
}
