// orinsim_serve's front end: a dependency-free HTTP/1.1 daemon over the
// steppable serving engine.
//
// Architecture: one accept thread polls the listening socket and hands each
// accepted connection to its own thread (thread-per-connection), bounded by
// max_connections — beyond the bound, connections are answered 503 and
// closed immediately rather than queueing unboundedly. Each connection
// serves exactly one request and closes (Connection: close), which keeps
// graceful drain simple: stop accepting, let every connection thread finish
// its response, join.
//
// Routes:
//   POST /v1/completions  OpenAI-style completions. Body: {"prompt": "...",
//                         "max_tokens": N, "stream": true|false}. With
//                         stream=true (default) tokens arrive as SSE events
//                         as the engine produces them, terminated by
//                         "data: [DONE]". Queue-cap overflow answers 429.
//   GET  /metrics         Prometheus text exposition of the serving state.
//   GET  /healthz         200 "ok" liveness probe.
//
// Shutdown: shutdown() (or a SIGTERM/SIGINT routed through
// run_until_signal's self-pipe) stops the accept loop, drains the engine
// host — in-flight requests run to retirement and their SSE streams flush —
// then joins every connection thread. Nothing in flight is dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <thread>

#include "server/engine_host.h"
#include "server/http.h"

namespace orinsim::server {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  // 0: pick an ephemeral port (see Server::port())
  std::string model_name = "orinsim-nano";  // echoed in completion responses
  std::size_t max_connections = 64;
  int listen_backlog = 16;
  HttpParser::Limits http_limits;
  // Patience for an idle connection to deliver its request, in milliseconds.
  int receive_timeout_ms = 30000;
};

class Server {
 public:
  // `host` must outlive the server.
  Server(EngineHost& host, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and starts the accept thread. Returns false with
  // `error` set on failure (e.g. port in use).
  bool start(std::string* error);

  // The bound port (after start); useful with port = 0.
  std::uint16_t port() const { return port_; }

  // Installs SIGTERM/SIGINT handlers and blocks until one arrives, then
  // performs the graceful shutdown. Only one Server per process may use
  // this (process-wide signal disposition).
  void run_until_signal();

  // Graceful shutdown: stop accepting, drain the engine, join connection
  // threads. Idempotent; also runs on destruction.
  void shutdown();

 private:
  struct Connection;
  void accept_loop();
  void handle_connection(int fd);
  void serve_request(int fd, const HttpRequest& request);
  void serve_completion(int fd, const HttpRequest& request);
  void reap_finished_locked();

  EngineHost& host_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // poke the accept loop's poll()
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool shut_down_ = false;
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::list<Connection> connections_;
  std::size_t live_connections_ = 0;
};

}  // namespace orinsim::server
