#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

#include "server/json.h"
#include "server/metrics.h"

namespace orinsim::server {

namespace {

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

std::string error_body(std::string_view message, std::string_view type) {
  return "{\"error\":{\"message\":" + json_string(message) +
         ",\"type\":" + json_string(type) + "}}\n";
}

bool send_error(int fd, int status, std::string_view message, std::string_view type) {
  return send_all(fd, http_response(status, "application/json", error_body(message, type)));
}

// Self-pipe for run_until_signal: the handler must be async-signal-safe, so
// it only writes one byte.
int g_signal_pipe[2] = {-1, -1};

void signal_handler(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

struct Server::Connection {
  std::thread thread;
  std::shared_ptr<std::atomic<bool>> done;
};

Server::Server(EngineHost& host, ServerConfig config)
    : host_(host), config_(std::move(config)) {}

Server::~Server() { shutdown(); }

bool Server::start(std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  };

  // SSE writes race client disconnects by design; failures surface as
  // send() errors, not process-killing SIGPIPEs.
  ::signal(SIGPIPE, SIG_IGN);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return fail("inet_pton(" + config_.bind_address + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, config_.listen_backlog) != 0) return fail("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  if (::pipe(wake_pipe_) != 0) return fail("pipe");

  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int pr = ::poll(fds, 2, 250);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load()) break;
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      reap_finished_locked();
    }
    if (pr == 0 || !(fds[0].revents & POLLIN)) continue;

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    std::lock_guard<std::mutex> lk(conn_mu_);
    if (live_connections_ >= config_.max_connections) {
      // Bounded accept: shed load at the door instead of queueing threads.
      send_error(fd, 503, "connection limit reached", "overloaded");
      ::close(fd);
      continue;
    }
    ++live_connections_;
    auto done = std::make_shared<std::atomic<bool>>(false);
    connections_.push_back(Connection{
        std::thread([this, fd, done] {
          handle_connection(fd);
          ::close(fd);
          std::lock_guard<std::mutex> inner(conn_mu_);
          --live_connections_;
          done->store(true);
        }),
        done});
  }
}

void Server::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done->load()) {
      it->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::handle_connection(int fd) {
  HttpParser parser(config_.http_limits);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.receive_timeout_ms);
  while (!parser.done() && !parser.failed()) {
    pollfd p{fd, POLLIN, 0};
    const int pr = ::poll(&p, 1, 250);
    if (stopping_.load() && !parser.done()) {
      send_error(fd, 503, "server is shutting down", "shutting_down");
      return;
    }
    if (pr < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (pr == 0) {
      if (std::chrono::steady_clock::now() >= deadline) {
        send_error(fd, 400, "timed out waiting for request", "timeout");
        return;
      }
      continue;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;  // client closed (or error) before completing a request
    parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
  if (parser.failed()) {
    send_error(fd, parser.error_status(), parser.error_reason(), "bad_request");
    return;
  }
  serve_request(fd, parser.request());
}

void Server::serve_request(int fd, const HttpRequest& request) {
  if (request.path == "/healthz") {
    send_all(fd, http_response(200, "text/plain", "ok\n"));
    return;
  }
  if (request.path == "/metrics") {
    if (request.method != "GET") {
      send_error(fd, 405, "use GET", "method_not_allowed");
      return;
    }
    send_all(fd, http_response(200, prometheus_content_type(),
                               render_prometheus(host_.metrics())));
    return;
  }
  if (request.path == "/v1/completions") {
    if (request.method != "POST") {
      send_error(fd, 405, "use POST", "method_not_allowed");
      return;
    }
    serve_completion(fd, request);
    return;
  }
  send_error(fd, 404, "no such route: " + request.path, "not_found");
}

void Server::serve_completion(int fd, const HttpRequest& request) {
  JsonValue body;
  std::string parse_error;
  if (!JsonValue::parse(request.body, body, &parse_error) || !body.is_object()) {
    send_error(fd, 400, "body must be a JSON object (" + parse_error + ")",
               "invalid_request_error");
    return;
  }
  const JsonValue* prompt = body.find("prompt");
  if (prompt == nullptr || !prompt->is_string()) {
    send_error(fd, 400, "\"prompt\" must be a string", "invalid_request_error");
    return;
  }
  std::size_t max_tokens = 16;
  if (const JsonValue* mt = body.find("max_tokens"); mt != nullptr) {
    const double v = mt->is_number() ? mt->as_number() : -1.0;
    if (v < 1.0 || v > 1e9 || v != std::floor(v)) {
      send_error(fd, 400, "\"max_tokens\" must be a positive integer",
                 "invalid_request_error");
      return;
    }
    max_tokens = static_cast<std::size_t>(v);
  }
  bool stream = true;
  if (const JsonValue* s = body.find("stream"); s != nullptr) {
    if (!s->is_bool()) {
      send_error(fd, 400, "\"stream\" must be a boolean", "invalid_request_error");
      return;
    }
    stream = s->as_bool();
  }

  EngineHost::Submission sub = host_.submit(prompt->as_string(), max_tokens);
  switch (sub.status) {
    case EngineHost::SubmitStatus::kRejected:
      send_error(fd, 429, "engine queue is full, retry later", "overloaded");
      return;
    case EngineHost::SubmitStatus::kDraining:
      send_error(fd, 503, "server is draining", "shutting_down");
      return;
    case EngineHost::SubmitStatus::kInvalid:
      send_error(fd, 400, sub.error, "invalid_request_error");
      return;
    case EngineHost::SubmitStatus::kOk:
      break;
  }

  if (stream) {
    if (!send_all(fd, sse_response_head())) {
      sub.stream->cancel();
      return;
    }
    std::string token;
    while (sub.stream->next_token(token)) {
      const std::string payload =
          "{\"object\":\"text_completion.chunk\",\"model\":" +
          json_string(config_.model_name) + ",\"choices\":[{\"index\":0,\"text\":" +
          json_string(token) + ",\"finish_reason\":null}]}";
      if (!send_all(fd, sse_event(payload))) {
        // Client went away mid-stream: stop delivering, let the engine run
        // the request to completion on its own.
        sub.stream->cancel();
        return;
      }
    }
    const CompletionStream::Final& fin = sub.stream->final_info();
    const std::string last =
        "{\"object\":\"text_completion.chunk\",\"model\":" +
        json_string(config_.model_name) +
        ",\"choices\":[{\"index\":0,\"text\":\"\",\"finish_reason\":\"length\"}]"
        ",\"usage\":{\"prompt_tokens\":" + std::to_string(fin.prompt_tokens) +
        ",\"completion_tokens\":" + std::to_string(fin.completion_tokens) +
        ",\"total_tokens\":" + std::to_string(fin.prompt_tokens + fin.completion_tokens) +
        "}}";
    if (!send_all(fd, sse_event(last))) return;
    send_all(fd, sse_event("[DONE]"));
    return;
  }

  std::string text;
  std::string token;
  while (sub.stream->next_token(token)) text += token;
  const CompletionStream::Final& fin = sub.stream->final_info();
  const std::string response_body =
      "{\"object\":\"text_completion\",\"model\":" + json_string(config_.model_name) +
      ",\"choices\":[{\"index\":0,\"text\":" + json_string(text) +
      ",\"finish_reason\":\"length\"}],\"usage\":{\"prompt_tokens\":" +
      std::to_string(fin.prompt_tokens) + ",\"completion_tokens\":" +
      std::to_string(fin.completion_tokens) + ",\"total_tokens\":" +
      std::to_string(fin.prompt_tokens + fin.completion_tokens) + "}}\n";
  send_all(fd, http_response(200, "application/json", response_body));
}

void Server::run_until_signal() {
  if (::pipe(g_signal_pipe) != 0) return;
  struct sigaction sa{};
  sa.sa_handler = signal_handler;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  char byte = 0;
  while (true) {
    const ssize_t n = ::read(g_signal_pipe[0], &byte, 1);
    if (n > 0 || (n < 0 && errno != EINTR)) break;
  }
  shutdown();
  ::close(g_signal_pipe[0]);
  ::close(g_signal_pipe[1]);
  g_signal_pipe[0] = g_signal_pipe[1] = -1;
}

void Server::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  stopping_.store(true);
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Let every in-flight request retire and flush its stream, then join the
  // connection threads that are writing those bytes out.
  host_.drain();
  std::list<Connection> remaining;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    remaining.swap(connections_);
  }
  for (Connection& c : remaining) {
    if (c.thread.joinable()) c.thread.join();
  }

  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

}  // namespace orinsim::server
