#include "server/json.h"

#include <cstdio>

#include "core/string_util.h"

namespace orinsim::server {

namespace {

bool is_ws(char c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; }

// Encodes a Unicode code point as UTF-8.
void append_utf8(std::string& out, unsigned long cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

class JsonParser {
 public:
  JsonParser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  bool run(JsonValue& out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return true;
  }

 private:
  static constexpr std::size_t kMaxDepth = 32;

  bool fail(const char* message) {
    if (error_ != nullptr) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%s (offset %zu)", message, pos_);
      *error_ = buf;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() && is_ws(text_[pos_])) ++pos_;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_value(JsonValue& out, std::size_t depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.type_ = JsonValue::Type::kString;
        return parse_string(out.string_);
      case 't':
        if (!consume_literal("true")) return fail("bad literal");
        out.type_ = JsonValue::Type::kBool;
        out.bool_ = true;
        return true;
      case 'f':
        if (!consume_literal("false")) return fail("bad literal");
        out.type_ = JsonValue::Type::kBool;
        out.bool_ = false;
        return true;
      case 'n':
        if (!consume_literal("null")) return fail("bad literal");
        out.type_ = JsonValue::Type::kNull;
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, std::size_t depth) {
    ++pos_;  // '{'
    out.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':' after key");
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.members_.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out, std::size_t depth) {
    ++pos_;  // '['
    out.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.items_.push_back(std::move(value));
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (eof()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned long cp = 0;
          if (!parse_hex4(cp)) return false;
          // Surrogate pair: a high surrogate must be followed by \uDC00-DFFF.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              return fail("unpaired surrogate");
            }
            pos_ += 2;
            unsigned long low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) return fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("bad escape character");
      }
    }
  }

  bool parse_hex4(unsigned long& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<unsigned long>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<unsigned long>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<unsigned long>(c - 'A' + 10);
      else return fail("bad hex digit in \\u escape");
    }
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && ((peek() >= '0' && peek() <= '9') || peek() == '.' || peek() == 'e' ||
                      peek() == 'E' || peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("unexpected character");
    double value = 0.0;
    // Strict parse: overflow ("1e999") and garbage fail here rather than
    // becoming inf/0 — the same contract as CLI numeric flags.
    if (!parse_double_strict(text_.substr(start, pos_ - start), value)) {
      pos_ = start;
      return fail("malformed number");
    }
    out.type_ = JsonValue::Type::kNumber;
    out.number_ = value;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string* error_;
};

bool JsonValue::parse(std::string_view text, JsonValue& out, std::string* error) {
  out = JsonValue();
  JsonParser parser(text, error);
  return parser.run(out);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_string(std::string_view text) {
  return "\"" + json_escape(text) + "\"";
}

}  // namespace orinsim::server
