// Minimal JSON for the serving daemon: parse request bodies, serialize
// responses and SSE payloads. Self-contained (no third-party dependency),
// covering the subset the OpenAI-style completions API needs: objects,
// arrays, strings (with escapes and \uXXXX), finite numbers, booleans,
// null. Numbers go through core/string_util's strict parsers, so the same
// hardening that guards CLI flags guards HTTP fields: trailing garbage,
// overflow, and non-finite values are parse errors, never silent zeros.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace orinsim::server {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  // Parses exactly one JSON document (trailing non-whitespace is an error).
  // On failure returns false and, when `error` is non-null, a short message
  // with the byte offset of the problem.
  static bool parse(std::string_view text, JsonValue& out, std::string* error = nullptr);

  Type type() const noexcept { return type_; }
  bool is_object() const noexcept { return type_ == Type::kObject; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }

  bool as_bool() const noexcept { return bool_; }
  double as_number() const noexcept { return number_; }
  const std::string& as_string() const noexcept { return string_; }
  const std::vector<JsonValue>& items() const noexcept { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const noexcept {
    return members_;
  }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;  // kObject, in order
};

// Escapes a string for embedding inside JSON quotes (control characters,
// quote, backslash; non-ASCII bytes pass through untouched).
std::string json_escape(std::string_view text);

// {"key": "escaped"} building blocks used by the response writers.
std::string json_string(std::string_view text);

}  // namespace orinsim::server
