#include "server/http.h"

#include <algorithm>
#include <cctype>

#include "core/string_util.h"

namespace orinsim::server {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string_view trim_view(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

// Strict hex parse for chunk-size lines. Chunk extensions (";ext=...") are
// ignored per RFC 7230; an empty or non-hex size is malformed.
bool parse_chunk_size(std::string_view line, std::size_t& out) {
  const std::size_t semi = line.find(';');
  if (semi != std::string_view::npos) line = line.substr(0, semi);
  line = trim_view(line);
  if (line.empty() || line.size() > 8) return false;  // 8 hex digits = 4 GiB cap
  std::size_t value = 0;
  for (const char c : line) {
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<std::size_t>(c - '0');
    else if (c >= 'a' && c <= 'f') value |= static_cast<std::size_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') value |= static_cast<std::size_t>(c - 'A' + 10);
    else return false;
  }
  out = value;
  return true;
}

}  // namespace

bool url_decode(std::string_view in, std::string& out) {
  out.clear();
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%') {
      if (i + 2 >= in.size()) return false;
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      const int hi = hex(in[i + 1]);
      const int lo = hex(in[i + 2]);
      if (hi < 0 || lo < 0) return false;
      out.push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return true;
}

HttpParser::State HttpParser::fail(int status, std::string reason) {
  state_ = State::kError;
  error_status_ = status;
  error_reason_ = std::move(reason);
  buffer_.clear();
  return state_;
}

bool HttpParser::parse_header_block(std::string_view block) {
  // Request line: METHOD SP target SP HTTP/1.x
  std::size_t line_end = block.find("\r\n");
  std::size_t skip = 2;
  if (line_end == std::string_view::npos) {
    line_end = block.find('\n');
    skip = 1;
  }
  if (line_end == std::string_view::npos) line_end = block.size();
  const std::string_view request_line = block.substr(0, line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) return false;
  request_.method = std::string(request_line.substr(0, sp1));
  request_.target = std::string(trim_view(request_line.substr(sp1 + 1, sp2 - sp1 - 1)));
  const std::string_view version = trim_view(request_line.substr(sp2 + 1));
  if (request_.method.empty() || request_.target.empty()) return false;
  if (version != "HTTP/1.1" && version != "HTTP/1.0") return false;

  // Split target into path + query, both percent-decoded.
  std::string_view target = request_.target;
  std::string_view query;
  const std::size_t qmark = target.find('?');
  if (qmark != std::string_view::npos) {
    query = target.substr(qmark + 1);
    target = target.substr(0, qmark);
  }
  if (!url_decode(target, request_.path)) return false;
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{} : query.substr(amp + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    std::string key, value;
    if (eq == std::string_view::npos) {
      if (!url_decode(pair, key)) return false;
    } else {
      if (!url_decode(pair.substr(0, eq), key)) return false;
      if (!url_decode(pair.substr(eq + 1), value)) return false;
    }
    request_.query[key] = value;
  }

  // Header fields, keys lower-cased. Folded (obsolete multi-line) headers
  // are rejected as malformed.
  std::size_t pos = line_end + skip;
  while (pos < block.size()) {
    std::size_t eol = block.find("\r\n", pos);
    std::size_t step = 2;
    if (eol == std::string_view::npos) {
      eol = block.find('\n', pos);
      step = 1;
    }
    if (eol == std::string_view::npos) {
      eol = block.size();
      step = 0;
    }
    const std::string_view line = block.substr(pos, eol - pos);
    pos = eol + step;
    if (line.empty()) continue;
    if (line.front() == ' ' || line.front() == '\t') return false;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    request_.headers[lower(trim_view(line.substr(0, colon)))] =
        std::string(trim_view(line.substr(colon + 1)));
  }
  return true;
}

HttpParser::State HttpParser::feed(std::string_view data) {
  if (state_ == State::kDone || state_ == State::kError) return state_;
  buffer_.append(data.data(), data.size());

  if (state_ == State::kHeaders) {
    std::size_t end = buffer_.find("\r\n\r\n");
    std::size_t skip = 4;
    if (end == std::string::npos) {
      end = buffer_.find("\n\n");
      skip = 2;
    }
    if (end == std::string::npos) {
      if (buffer_.size() > limits_.max_header_bytes) {
        return fail(431, "header block exceeds limit");
      }
      return state_;
    }
    if (end > limits_.max_header_bytes) {
      return fail(431, "header block exceeds limit");
    }
    if (!parse_header_block(std::string_view(buffer_).substr(0, end))) {
      return fail(400, "malformed request head");
    }
    buffer_.erase(0, end + skip);

    const std::string te = lower(request_.header("transfer-encoding"));
    if (!te.empty()) {
      if (te != "chunked") return fail(400, "unsupported transfer-encoding");
      state_ = State::kChunkSize;
    } else if (request_.has_header("content-length")) {
      long long length = 0;
      if (!parse_int_strict(request_.header("content-length"), length) || length < 0) {
        return fail(400, "malformed content-length");
      }
      if (static_cast<std::size_t>(length) > limits_.max_body_bytes) {
        return fail(413, "body exceeds limit");
      }
      content_remaining_ = static_cast<std::size_t>(length);
      state_ = content_remaining_ == 0 ? State::kDone : State::kBody;
    } else {
      state_ = State::kDone;
    }
    if (state_ == State::kDone) {
      buffer_.clear();  // one request per connection; pipelined bytes dropped
      return state_;
    }
  }

  advance_body();
  return state_;
}

void HttpParser::advance_body() {
  while (state_ != State::kDone && state_ != State::kError) {
    switch (state_) {
      case State::kBody: {
        const std::size_t take = std::min(content_remaining_, buffer_.size());
        request_.body.append(buffer_, 0, take);
        buffer_.erase(0, take);
        content_remaining_ -= take;
        if (content_remaining_ == 0) {
          state_ = State::kDone;
          return;
        }
        return;  // need more bytes
      }
      case State::kChunkSize: {
        std::size_t eol = buffer_.find("\r\n");
        std::size_t skip = 2;
        if (eol == std::string::npos) {
          eol = buffer_.find('\n');
          skip = 1;
        }
        if (eol == std::string::npos) {
          if (buffer_.size() > 64) {
            fail(400, "malformed chunk size");
            return;
          }
          return;
        }
        std::size_t size = 0;
        if (!parse_chunk_size(std::string_view(buffer_).substr(0, eol), size)) {
          fail(400, "malformed chunk size");
          return;
        }
        buffer_.erase(0, eol + skip);
        if (request_.body.size() + size > limits_.max_body_bytes) {
          fail(413, "body exceeds limit");
          return;
        }
        if (size == 0) {
          state_ = State::kTrailers;
        } else {
          content_remaining_ = size;
          state_ = State::kChunkData;
        }
        break;
      }
      case State::kChunkData: {
        const std::size_t take = std::min(content_remaining_, buffer_.size());
        request_.body.append(buffer_, 0, take);
        buffer_.erase(0, take);
        content_remaining_ -= take;
        if (content_remaining_ > 0) return;  // need more bytes
        state_ = State::kChunkEnd;
        break;
      }
      case State::kChunkEnd: {
        // CRLF (or bare LF) terminating the chunk payload.
        if (buffer_.size() >= 2 && buffer_[0] == '\r' && buffer_[1] == '\n') {
          buffer_.erase(0, 2);
          state_ = State::kChunkSize;
        } else if (!buffer_.empty() && buffer_[0] == '\n') {
          buffer_.erase(0, 1);
          state_ = State::kChunkSize;
        } else if (buffer_.size() >= 2 || (buffer_.size() == 1 && buffer_[0] != '\r')) {
          fail(400, "missing chunk terminator");
          return;
        } else {
          return;  // need more bytes
        }
        break;
      }
      case State::kTrailers: {
        // Consume trailer lines until the blank line that ends the message.
        while (true) {
          std::size_t eol = buffer_.find("\r\n");
          std::size_t skip = 2;
          if (eol == std::string::npos) {
            eol = buffer_.find('\n');
            skip = 1;
          }
          if (eol == std::string::npos) {
            if (buffer_.size() > 1024) fail(400, "malformed trailers");
            return;
          }
          const bool blank = eol == 0;
          buffer_.erase(0, eol + skip);
          if (blank) {
            state_ = State::kDone;
            return;
          }
        }
      }
      default:
        return;
    }
  }
}

const char* http_status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string http_response(int status, std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    http_status_reason(status) + "\r\n";
  out += "Content-Type: " + std::string(content_type) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

std::string sse_response_head() {
  return
      "HTTP/1.1 200 OK\r\n"
      "Content-Type: text/event-stream\r\n"
      "Cache-Control: no-cache\r\n"
      "Connection: close\r\n\r\n";
}

std::string sse_event(std::string_view payload) {
  return "data: " + std::string(payload) + "\n\n";
}

}  // namespace orinsim::server
